"""Block-pair kernels: the local solvers of the block Jacobi method.

A met block pair is a set of ``2b`` co-resident columns ``Y`` that must
be orthogonalised against each other before the schedule moves the
blocks on.  Three interchangeable solvers are provided:

``reference``
    The original loop: ``inner_sweeps`` cyclic odd-even sweeps of
    disjoint plane rotations, each step a masked BLAS-1
    :func:`~repro.svd.rotations.apply_step_rotations` call on the full
    matrix.  The numerics every other kernel is tested against.

``batched``
    The same sweep structure, but the ``2b`` columns (data and ``V``
    rows stacked) are gathered once into a column-as-row buffer and each
    step is one fused
    :func:`~repro.svd.rotations.apply_step_rotations_batched` call —
    the scalar fast path of PR 2 reaching the block regime.

``gram``
    BLAS-3: form the ``2b x 2b`` Gram matrix ``G = Y^T Y`` once, run the
    inner cyclic Jacobi entirely on ``G`` while accumulating the
    orthogonal factor ``W`` in ``2b x 2b`` space
    (:func:`repro.eig.gram_eigh_batched`), then apply ``Y <- Y W`` and
    ``V <- V W`` with single GEMMs.  ``inner_sweeps`` worth of strided
    column updates collapse into two ``(m x 2b) @ (2b x 2b)`` matmuls
    per pair, so the dominant cost is matrix-matrix work.  Because the
    block pairs met in one schedule step have disjoint column sets, the
    gram kernel solves *all* of them at once through
    :func:`solve_block_step`: one stacked Gram form, one batched small
    Jacobi, one stacked application — on a simulated machine this is
    exactly the work the leaves do concurrently.

Accuracy note for ``gram``: forming and applying in Gram space is
norm-wise backward stable, but the BLAS-3 application mixes all ``2b``
columns, so pairwise dot products cannot be driven below a noise floor
of ``~ 2b * eps * max||y_i||^2`` (the reference kernel, rotating column
pairs directly, has no such floor).  The kernel therefore measures
convergence against ``tol * ||y_i|| ||y_j|| + floor`` — singular values
still match LAPACK to the suite's absolute tolerances, while the tiniest
values keep only absolute (not relative) accuracy, the standard
trade-off of blocked Jacobi (cf. arXiv:1401.2720).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..eig.jacobi import gram_eigh_batched, gram_eigh_grouped
from ..kernels import ComputeBackend, numpy_backend, resolve_compute_backend
from ..svd.rotations import (
    RotationStats,
    apply_step_rotations,
    apply_step_rotations_batched,
)
from ..util.errors import NumericalBreakdown
from ..util.validation import require

__all__ = ["BLOCK_KERNELS", "FALLBACK_CHAINS", "GRAM_NOISE", "KERNEL_STAGES",
           "fastpath_gram_flush", "fastpath_gram_step", "solve_block_pair",
           "solve_block_step",
           "solve_block_step_batch"]

#: registered block-pair kernels; ``gram`` is the BLAS-3 fast path
BLOCK_KERNELS = ("reference", "batched", "gram")

#: declarative stage structure of each kernel under the step executor:
#: ``(stage name, splittable)`` in execution order.  A splittable stage
#: may be chunked over its batch/pair dimension (every chunk writes a
#: disjoint slice); an unsplittable stage must run as one full-stack
#: call — the gram kernel's inner Jacobi couples matrices across the
#: batch through its convergence floor, so splitting it would change
#: the rotation sequence and break the bit-identity contract.  The
#: static executor-plan analyzer (:mod:`repro.verify.executor_plan`)
#: proves each stage's chunking against this table (rule ``EXEC002``).
KERNEL_STAGES: dict[str, tuple[tuple[str, bool], ...]] = {
    "reference": (("pair-solve", True),),
    "batched": (("pair-solve", True),),
    "gram": (("gram-form", True), ("gram-solve", False), ("gram-apply", True)),
}

#: per-kernel fallback chain on :class:`NumericalBreakdown`: when a
#: solver's Gram quantities go non-finite, the affected block pairs are
#: re-solved one robustness rung down.  The guarded reference solver
#: (direct column rotations with an overflow prescale) is the last
#: resort; a breakdown it cannot absorb (genuinely corrupted data)
#: propagates to the caller — under a fault-recovery driver that
#: triggers a sweep-checkpoint rollback instead of garbage output.
FALLBACK_CHAINS = {
    "gram": ("gram", "batched", "reference"),
    "batched": ("batched", "reference"),
    "reference": ("reference",),
}

#: local column magnitudes above this trip the reference solver's
#: prescale guard (Gram products overflow around 1e154)
_PRESCALE_PEAK = 1e100

#: safety factor of the gram kernel's convergence noise floor
#: ``GRAM_NOISE * 2b * eps * max(G_ii)`` (see module docstring)
GRAM_NOISE = 8.0

_EPS = float(np.finfo(np.float64).eps)
_TINY = float(np.finfo(np.float64).tiny)
_SORT_MODES = ("desc", "asc", None)


def solve_block_pair(
    X: np.ndarray,
    V: np.ndarray | None,
    cols: np.ndarray,
    tol: float,
    sort: str | None,
    inner_sweeps: int,
    kernel: str = "gram",
    compute_backend: "str | ComputeBackend | None" = None,
) -> tuple[RotationStats, float]:
    """Orthogonalise the ``2b`` columns ``cols`` of ``X`` against each other.

    ``X`` (and ``V``) are modified in place.  Returns the rotation
    counters and the worst relative off-diagonal observed at first touch
    — the outer driver's convergence signal.  With ``sort`` set, the
    local solve leaves norms ordered along ascending column index
    (larger norms at smaller indices for ``"desc"``), the convention
    that makes sorted output emerge at block granularity.
    """
    return solve_block_step(X, V, [np.asarray(cols, dtype=np.intp)],
                            tol, sort, inner_sweeps, kernel,
                            compute_backend=compute_backend)


def solve_block_step(
    X: np.ndarray,
    V: np.ndarray | None,
    pair_cols: "list[np.ndarray] | np.ndarray",
    tol: float,
    sort: str | None,
    inner_sweeps: int,
    kernel: str = "gram",
    executor=None,
    sanitizer=None,
    compute_backend: "str | ComputeBackend | None" = None,
) -> tuple[RotationStats, float]:
    """Solve every met block pair of one schedule step.

    ``pair_cols`` holds one ``2b``-element column-index array per block
    pair (a list of arrays or one ``(n_pairs, 2b)`` array); the sets are
    disjoint (the pairs run on distinct leaves), so the local solves are
    independent and the gram kernel batches them into stacked BLAS-3
    calls.  Returns merged rotation counters and the worst first-touch
    relative off-diagonal across all pairs.

    ``executor`` (a :class:`~repro.parallel.executor.StepExecutor`)
    spreads the step's independent work over worker threads or
    processes: the gram kernel chunks only its gather/Gram-form and
    apply/scatter GEMM phases — the inner Gram Jacobi stays one
    full-stack solve, because its convergence floor couples matrices
    across the batch and splitting it would change the rotation
    sequence — while the per-pair kernels chunk the pair loop itself.
    The chunked phases are module-level *tasks* dispatched through
    :meth:`~repro.parallel.executor.StepExecutor.run_shared`, so the
    process backend ships bounds and shared-memory specs instead of
    matrices.  Either way the result is bit-identical to the serial
    path for any worker count (see :mod:`repro.parallel.executor` for
    the contract).

    ``compute_backend`` selects the batched-GEMM primitives
    (:mod:`repro.kernels`); ``None`` resolves from
    ``$REPRO_COMPUTE_BACKEND`` (default numpy).

    On :class:`~repro.util.errors.NumericalBreakdown` the step degrades
    gracefully: the pairs are re-solved one by one, each walking down
    :data:`FALLBACK_CHAINS` (``stats.fallbacks`` counts the downgrades).
    The stacked solvers only raise *before* touching ``X``/``V``, so the
    per-pair retry starts from unmodified data.

    ``sanitizer`` (a :class:`~repro.verify.sanitize.RuntimeSanitizer`)
    opens a write-set record for the step: the solvers report the column
    sets they actually scatter into, and the record is cross-checked
    against the per-pair column sets when the step closes (rule
    ``SAN001``).
    """
    require(sort in _SORT_MODES, f"sort must be one of {_SORT_MODES}, got {sort!r}")
    if len(pair_cols) == 0:
        return RotationStats(), 0.0
    require(kernel in BLOCK_KERNELS,
            f"unknown block kernel {kernel!r}; "
            f"available: {', '.join(BLOCK_KERNELS)}")
    backend = resolve_compute_backend(compute_backend)
    if sanitizer is None:
        return _solve_step_body(X, V, pair_cols, tol, sort, inner_sweeps,
                                kernel, executor, None, backend)
    expected = [frozenset(int(c) for c in pair_cols[i])
                for i in range(len(pair_cols))]
    workers = 1 if executor is None else executor.workers
    sanitizer.begin_step(len(pair_cols), expected, workers=workers)
    try:
        out = _solve_step_body(X, V, pair_cols, tol, sort, inner_sweeps,
                               kernel, executor, sanitizer, backend)
    except BaseException:
        # the step never completed; its write-set record is meaningless
        sanitizer.abort_step()
        raise
    sanitizer.end_step()
    return out


def _phase_bounds(executor, n_items: int,
                  chunked: bool) -> list[tuple[int, int]]:
    """The chunk bounds a dispatched phase ran with (for parent-side
    sanitizer records: under the process backend ``record_touch`` cannot
    run inside the workers, so the parent replays the deterministic
    bounds after the dispatch settles)."""
    if not chunked:
        return [(0, n_items)] if n_items else []
    return executor.chunk_bounds(n_items, executor.workers)


def _task_solve_pairs(
    arrays: dict, lo: int, hi: int, *, cols, tol, sort, inner_sweeps,
    chain, backend,
) -> tuple[RotationStats, float]:
    """Chunk task of the per-pair kernels: solve pairs ``[lo, hi)``."""
    X = arrays["X"]
    V = arrays.get("V")
    stats = RotationStats()
    worst = 0.0
    for i in range(lo, hi):
        st, mx = _solve_pair_chain(X, V, cols[i], tol, sort,
                                   inner_sweeps, chain, backend)
        stats.merge(st)
        worst = max(worst, mx)
    return stats, worst


def _solve_step_body(
    X: np.ndarray,
    V: np.ndarray | None,
    pair_cols: "list[np.ndarray] | np.ndarray",
    tol: float,
    sort: str | None,
    inner_sweeps: int,
    kernel: str,
    executor,
    sanitizer,
    backend: ComputeBackend | None = None,
) -> tuple[RotationStats, float]:
    """The dispatch body of :func:`solve_block_step` (validated input)."""
    backend = backend if backend is not None else numpy_backend()
    if kernel == "gram":
        try:
            return _solve_gram_many(X, V, pair_cols, tol, sort, inner_sweeps,
                                    executor, sanitizer, backend)
        except NumericalBreakdown:
            pass  # isolate the poisoned pairs via the per-pair chain
    chain = FALLBACK_CHAINS[kernel]
    n_pairs = len(pair_cols)
    arrays = {"X": X}
    if V is not None:
        arrays["V"] = V
    payload = dict(cols=pair_cols, tol=tol, sort=sort,
                   inner_sweeps=inner_sweeps, chain=chain, backend=backend)
    chunked = executor is not None and executor.workers > 1
    if not chunked:
        out = [_task_solve_pairs(arrays, 0, n_pairs, **payload)]
    else:
        # pairs touch disjoint columns, so the chunks are fully
        # independent; results merge in chunk order for a deterministic
        # reduction
        out = executor.run_shared(n_pairs, _task_solve_pairs, arrays,
                                  **payload)
    if sanitizer is not None:
        # the per-pair solvers rewrite every column of their pairs
        for lo, hi in _phase_bounds(executor, n_pairs, chunked):
            sanitizer.record_touch(
                lo, hi, np.concatenate([np.asarray(pair_cols[i])
                                        for i in range(lo, hi)]))
    stats = RotationStats()
    worst = 0.0
    for st, mx in out:
        stats.merge(st)
        worst = max(worst, mx)
    return stats, worst


def _solve_pair_chain(
    X: np.ndarray,
    V: np.ndarray | None,
    cols: np.ndarray,
    tol: float,
    sort: str | None,
    inner_sweeps: int,
    chain: tuple[str, ...],
    backend: ComputeBackend | None = None,
) -> tuple[RotationStats, float]:
    """Solve one block pair, falling down ``chain`` on breakdown."""
    last: NumericalBreakdown | None = None
    downgrades = 0
    for kern in chain:
        try:
            if kern == "gram":
                st, mx = _solve_gram_many(X, V, [cols], tol, sort,
                                          inner_sweeps, backend=backend)
            elif kern == "batched":
                st, mx = _solve_batched(X, V, cols, tol, sort, inner_sweeps)
            else:
                st, mx = _solve_reference_guarded(X, V, cols, tol, sort,
                                                  inner_sweeps)
            st.fallbacks += downgrades
            return st, mx
        except NumericalBreakdown as exc:
            last = exc
            downgrades += 1
    raise last


def _solve_reference_guarded(
    X: np.ndarray,
    V: np.ndarray | None,
    cols: np.ndarray,
    tol: float,
    sort: str | None,
    inner_sweeps: int,
) -> tuple[RotationStats, float]:
    """Reference solver with an overflow prescale guard.

    Plane rotations are scale-invariant, so when the local columns are
    large enough for their Gram products to overflow (the breakdown the
    fast kernels just reported), dividing the block by its peak
    magnitude, solving, and multiplying back recovers the exact same
    rotations without ever leaving the finite range.  Genuinely
    corrupted data (NaN, or Inf entries) still trips the sentinels
    inside and propagates — the fallback chain rescues overflow, not
    corruption.
    """
    peak = float(np.max(np.abs(X[:, cols]), initial=0.0))
    if np.isfinite(peak) and peak > _PRESCALE_PEAK:
        X[:, cols] /= peak
        try:
            return _solve_reference(X, V, cols, tol, sort, inner_sweeps)
        finally:
            X[:, cols] *= peak
    return _solve_reference(X, V, cols, tol, sort, inner_sweeps)


def _solve_reference(
    X: np.ndarray,
    V: np.ndarray | None,
    cols: np.ndarray,
    tol: float,
    sort: str | None,
    inner_sweeps: int,
) -> tuple[RotationStats, float]:
    """Cyclic odd-even sweeps of masked per-pair rotations (the spec).

    Runs ``inner_sweeps`` cyclic odd-even sweeps of disjoint rotations
    over the 2b local columns (all arithmetic is leaf-local on the
    machine, so the simulator charges it as compute).  Returns the worst
    relative off-diagonal seen at first touch (the convergence signal).
    """
    k = len(cols)
    stats = RotationStats()
    worst = 0.0
    first = True
    for _ in range(inner_sweeps):
        # odd-even over positions: covers all pairs of the 2b columns in
        # k steps of disjoint rotations
        order = list(cols)
        for parity in range(k):
            starts = range(parity % 2, k - 1, 2)
            pa = np.array([order[i] for i in starts], dtype=np.intp)
            pb = np.array([order[i + 1] for i in starts], dtype=np.intp)
            # orient by column id so the norm-ordering exchanges stay
            # consistent across sweeps (same fix as the scalar driver)
            left = np.minimum(pa, pb)
            right = np.maximum(pa, pb)
            if left.size:
                st, mx = apply_step_rotations(X, V, left, right, tol, sort)
                stats.merge(st)
                if first:
                    worst = max(worst, mx)
            # unconditional neighbour exchange walks every pair past
            # every other (odd-even transposition at position level)
            for i in starts:
                order[i], order[i + 1] = order[i + 1], order[i]
        first = False
    return stats, worst


def _solve_batched(
    X: np.ndarray,
    V: np.ndarray | None,
    cols: np.ndarray,
    tol: float,
    sort: str | None,
    inner_sweeps: int,
) -> tuple[RotationStats, float]:
    """The reference sweep structure on a gathered column-as-row buffer.

    The ``2b`` stacked ``[X; V]`` columns are gathered once, every
    odd-even step is one fused batched 2x2 transform, and the result is
    scattered back once — the scalar batched kernel's layout applied at
    block-pair scope (the local norm cache lives only for this solve, so
    no cross-sweep cache coherence is needed).
    """
    k = len(cols)
    m = X.shape[0]
    if V is not None:
        WT = np.hstack((X[:, cols].T, V[:, cols].T))
    else:
        WT = np.ascontiguousarray(X[:, cols].T)
    norms_sq = np.einsum("ij,ij->i", WT[:, :m], WT[:, :m])
    stats = RotationStats()
    worst = 0.0
    first = True
    # local row r holds column cols[r]; orientation follows column ids
    order = list(range(k))
    for _ in range(inner_sweeps):
        for parity in range(k):
            starts = range(parity % 2, k - 1, 2)
            ra = np.array([order[i] for i in starts], dtype=np.intp)
            rb = np.array([order[i + 1] for i in starts], dtype=np.intp)
            if ra.size:
                flip = cols[ra] > cols[rb]
                ab = np.column_stack((ra, rb))
                P = np.where(flip[:, None], ab[:, ::-1], ab)
                st, mx = apply_step_rotations_batched(
                    WT, P, tol, sort, norms_sq, m
                )
                stats.merge(st)
                if first:
                    worst = max(worst, mx)
            for i in starts:
                order[i], order[i + 1] = order[i + 1], order[i]
        first = False
    X[:, cols] = WT[:, :m].T
    if V is not None:
        V[:, cols] = WT[:, m:].T
    return stats, worst


def _sort_perm(w: np.ndarray, sort: str | None) -> np.ndarray | None:
    if sort == "desc":
        return np.argsort(-w, kind="stable")
    if sort == "asc":
        return np.argsort(w, kind="stable")
    return None


@lru_cache(maxsize=None)
def _triu_cache(k: int) -> tuple[np.ndarray, np.ndarray]:
    return np.triu_indices(k, 1)


def _sort_exchanges(
    pair_cols,
    d: np.ndarray,
    sort: str | None,
    stats: RotationStats,
) -> tuple[np.ndarray | None, np.ndarray | None]:
    """Column permutation implied by the norm-ordering convention on
    already-orthogonal blocks: concatenated ``(src, tgt)`` column ids of
    every pair that needs exchanging (``(None, None)`` when none does),
    with ``stats.exchanged`` counted.  Shared by the in-place event path
    (:func:`_apply_sort_only`) and the simulator fast path, which applies
    the same permutation as a pure row relabelling."""
    srcs = []
    tgts = []
    for i in range(len(pair_cols)):
        cols = pair_cols[i]
        perm = _sort_perm(d[i], sort)
        if perm is None:
            continue
        target = np.sort(cols)
        src = cols[perm]
        if not np.array_equal(src, target):
            stats.exchanged += int(np.count_nonzero(src != target)) // 2
            srcs.append(src)
            tgts.append(target)
    if not srcs:
        return None, None
    return np.concatenate(srcs), np.concatenate(tgts)


def _apply_sort_only(
    X: np.ndarray,
    V: np.ndarray | None,
    pair_cols: list[np.ndarray],
    d: np.ndarray,
    sort: str | None,
    stats: RotationStats,
    sanitizer=None,
) -> None:
    """Apply the norm-ordering convention to already-orthogonal blocks."""
    src, tgt = _sort_exchanges(pair_cols, d, sort, stats)
    if src is not None:
        X[:, tgt] = X[:, src]
        if V is not None:
            V[:, tgt] = V[:, src]
        if sanitizer is not None:
            sanitizer.record_touch(0, len(pair_cols), tgt)


def _scratch(executor, key: str, shape: tuple[int, ...]) -> np.ndarray:
    """Step scratch: executor-managed (shared memory under the process
    backend) or plain ``np.empty`` without one."""
    if executor is None:
        return np.empty(shape)
    return executor.scratch(key, shape)


def _task_gram_form(arrays: dict, lo: int, hi: int, *, cols, k, m,
                    backend) -> None:
    """Gather chunk ``[lo, hi)`` of the step's columns and form its Gram
    blocks — writes only its own ``Ys``/``G`` slices."""
    X = arrays["X"]
    Ys = arrays["Ys"]
    G = arrays["G"]
    XT = X.T
    Ys[lo:hi] = XT[cols[lo:hi].reshape(-1)].reshape(hi - lo, k, m)
    backend.gram(Ys[lo:hi], out=G[lo:hi])


def _task_gram_apply(arrays: dict, lo: int, hi: int, *, cols, tgt, k, m, n,
                     backend) -> None:
    """Apply chunk ``[lo, hi)`` of the step's rotation factors and
    scatter into the (disjoint) target columns."""
    X = arrays["X"]
    Ys = arrays["Ys"]
    W = arrays["W"]
    V = arrays.get("V")
    out = backend.apply_wt(W[lo:hi], Ys[lo:hi])  # (Y_i W_i)^T
    t = tgt[lo:hi].reshape(-1)
    X[:, t] = out.reshape((hi - lo) * k, m).T
    if V is not None:
        Vs = V.T[cols[lo:hi].reshape(-1)].reshape(hi - lo, k, n)
        vout = backend.apply_wt(W[lo:hi], Vs)
        V[:, t] = vout.reshape((hi - lo) * k, n).T


def _gram_measure(
    G: np.ndarray,
    cols_arr: np.ndarray,
    k: int,
    tol: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, float]:
    """Finite check, symmetrisation and convergence measurement of a
    ``(nb, k, k)`` Gram stack — the decision half of the gram kernel,
    shared verbatim by the event-driven path (:func:`_solve_gram_many`)
    and the simulator fast path (:func:`fastpath_gram_step`) so their
    bit-identity holds by construction.  Returns
    ``(G_sym, d, floor, worst)``; raises before any column is touched."""
    finite = np.isfinite(G)
    if not finite.all():
        # breakdown sentinel: raise before any column is touched so the
        # fallback chain can re-solve the poisoned pairs from clean data
        i = int(np.argwhere(~finite)[0][0])
        raise NumericalBreakdown(
            f"non-finite Gram block for pair {i} "
            f"(columns {cols_arr[i].tolist()})",
            where=(int(cols_arr[i][0]), int(cols_arr[i][-1])))
    # gemm output is symmetric only to rounding; the solver updates
    # (p, q) and (q, p) through the same rotation, so symmetrise once
    G = 0.5 * (G + G.transpose(0, 2, 1))
    d = np.diagonal(G, axis1=1, axis2=2)  # (nb, k) squared norms
    gmax = d.max(axis=1)
    floor = GRAM_NOISE * k * _EPS * gmax  # zero blocks get a zero floor
    fdiv = (floor / tol)[:, None] if tol > 0.0 else np.zeros((len(G), 1))
    i0, i1 = _triu_cache(k)
    denom = np.sqrt(np.abs(d[:, i0] * d[:, i1]))
    rel = np.abs(G[:, i0, i1]) / (denom + fdiv + _TINY)
    worst = float(rel.max(initial=0.0))
    return G, d, floor, worst


def _gram_factors(
    G: np.ndarray,
    cols_arr: np.ndarray,
    tol: float,
    sort: str | None,
    inner_sweeps: int,
    floor: np.ndarray,
    backend: ComputeBackend,
) -> tuple[np.ndarray, int, np.ndarray]:
    """Inner Gram Jacobi plus the sort convention — the factor half of
    the gram kernel, shared by both execution paths.  Returns
    ``(W, rotations, tgt_arr)`` with ``W``'s columns already permuted to
    land each block's norms in target order (``tgt_arr`` the sorted
    column targets, or ``cols_arr`` itself with ``sort=None``)."""
    W, rotations, _, _ = gram_eigh_batched(G, tol=tol,
                                           max_sweeps=inner_sweeps,
                                           floor=floor, backend=backend)
    if not np.isfinite(W).all():
        raise NumericalBreakdown(
            "non-finite rotation factor from the inner Gram Jacobi")
    if sort is not None:
        d2 = np.diagonal(G, axis1=1, axis2=2)
        if sort == "desc":
            perm = np.argsort(-d2, axis=1, kind="stable")
        else:
            perm = np.argsort(d2, axis=1, kind="stable")
        W = np.take_along_axis(W, perm[:, None, :], axis=2)
        tgt_arr = np.sort(cols_arr, axis=1)
    else:
        tgt_arr = cols_arr
    return W, rotations, tgt_arr


def _fp_buffer(scratch: "dict | None", key: str, rows: int,
               tail: tuple[int, ...]) -> np.ndarray:
    """Sweep-persistent step buffer for the fast path.

    Large per-step temporaries (the gathered ``(nb*2b, m)`` stacks and
    their rotated outputs) dominate the fast path's non-GEMM cost when
    freshly allocated each step: at n = 512 the malloc/page-fault churn
    of four ~2 MB arrays per step costs more than the gathers
    themselves.  Buffers live in ``scratch`` keyed by name, are grown
    monotonically, and are handed out as leading-axis views, so a whole
    sweep allocates each stack once.
    """
    if scratch is None:
        return np.empty((rows, *tail))
    buf = scratch.get(key)
    if buf is None or buf.shape[0] < rows or buf.shape[1:] != tail:
        buf = np.empty((max(rows, buf.shape[0] if buf is not None else 0),
                        *tail))
        scratch[key] = buf
    return buf[:rows]


def fastpath_gram_flush(
    XT: np.ndarray,
    VT: np.ndarray | None,
    scratch: "dict | None",
) -> None:
    """Write a carried rotation stack back into canonical storage.

    Full-coverage steps leave their rotated stacks in ``scratch`` (see
    :func:`fastpath_gram_step`) instead of scattering into ``XT``/``VT``;
    until the next flush the canonical buffers are stale for the stacked
    rows.  Callers must flush before reading ``XT``/``VT`` directly —
    the simulator does so at sweep end and before delegating a
    broken-down step to the event solver.  A no-op when nothing is
    carried."""
    if not scratch:
        return
    rows = scratch.pop("stack_rows", None)
    if rows is None:
        return
    XT[rows] = scratch["xstk"][:len(rows)]
    if VT is not None:
        VT[rows] = scratch["vstk"][:len(rows)]


def fastpath_gram_step(
    XT: np.ndarray,
    VT: np.ndarray | None,
    row_of_col: np.ndarray,
    cols_arr: np.ndarray,
    tol: float,
    sort: str | None,
    inner_sweeps: int,
    backend: ComputeBackend | None = None,
    scratch: "dict | None" = None,
) -> tuple[RotationStats, float]:
    """One schedule step of the gram kernel on transposed storage — the
    simulator fast path's solver.

    ``XT`` (``(n, m)``) and ``VT`` (``(n, n)``) hold the matrix columns
    as contiguous *rows*; ``row_of_col`` maps column id -> physical row
    (updated in place).  The step gathers its rows into the same
    C-contiguous ``(nb, 2b, m)`` stacks as the event path's
    :func:`_task_gram_form`, runs the shared measurement/factor helpers,
    and scatters results back into the gathered rows — so every GEMM
    sees bit-identical operands in bit-identical layouts, and row-major
    fancy gathers replace the event path's strided column gathers (the
    fast path's actual win).  Norm-ordering exchanges of
    already-orthogonal blocks become pure ``row_of_col`` relabelings:
    zero data movement, same ``stats.exchanged`` count.  ``scratch``
    (see :func:`_fp_buffer`) carries the step stacks across a sweep so
    steady-state steps are allocation-free; ``np.take(..., mode="clip")``
    and the backends' ``out=`` forms copy the same bits as the
    allocating forms.

    Raises :class:`~repro.util.errors.NumericalBreakdown` before
    touching any row; the caller materialises ``X``/``V`` and delegates
    the step to the event-path solver (same per-pair fallback chain).
    """
    backend = backend if backend is not None else numpy_backend()
    stats = RotationStats()
    cols_arr = np.asarray(cols_arr, dtype=np.intp)
    nb, k = cols_arr.shape
    m = XT.shape[1]
    n_rows = XT.shape[0]
    rows = row_of_col[cols_arr.reshape(-1)]
    # stack carry: a step that rotates every column leaves its output in
    # the scratch stack; the next full-coverage step gathers straight
    # from it (one warm permuted copy instead of a scatter + re-gather
    # through XT/VT).  Anything else flushes first, so the canonical
    # buffers are current whenever they are actually read.
    full = scratch is not None and len(rows) == n_rows
    stack_rows = scratch.get("stack_rows") if scratch is not None else None
    if stack_rows is not None and not full:
        fastpath_gram_flush(XT, VT, scratch)
        stack_rows = None
    Ys2d = _fp_buffer(scratch, "Ys", nb * k, (m,))
    if stack_rows is not None:
        idx = scratch["pos"][rows]
        np.take(scratch["xstk"], idx, axis=0, out=Ys2d, mode="clip")
    else:
        idx = None
        np.take(XT, rows, axis=0, out=Ys2d, mode="clip")
    Ys = Ys2d.reshape(nb, k, m)
    G = backend.gram(Ys, out=_fp_buffer(scratch, "G", nb, (k, k)))
    G, d, floor, worst = _gram_measure(G, cols_arr, k, tol)
    if worst <= tol:
        # already orthogonal: only the norm-ordering convention may act,
        # and it moves no data — any carried stack stays valid
        src, tgt = _sort_exchanges(cols_arr, d, sort, stats)
        if src is not None:
            row_of_col[tgt] = row_of_col[src]
        return stats, worst
    W, rotations, tgt_arr = _gram_factors(G, cols_arr, tol, sort,
                                          inner_sweeps, floor, backend)
    stats.applied = rotations
    if VT is not None:
        nv = VT.shape[1]
        Vs2d = _fp_buffer(scratch, "Vs", nb * k, (nv,))
        if idx is not None:
            np.take(scratch["vstk"], idx, axis=0, out=Vs2d, mode="clip")
        else:
            np.take(VT, rows, axis=0, out=Vs2d, mode="clip")
        Vs = Vs2d.reshape(nb, k, nv)
    if full:
        # rotate into the stack: the gathers above copied this step's
        # operands out, so the stack buffers are free to take the
        # (Y_i W_i)^T outputs; XT/VT go stale until the next flush
        xstk = _fp_buffer(scratch, "xstk", n_rows, (m,))
        backend.apply_wt(W, Ys, out=xstk.reshape(nb, k, m))
        if VT is not None:
            vstk = _fp_buffer(scratch, "vstk", n_rows, (nv,))
            backend.apply_wt(W, Vs, out=vstk.reshape(nb, k, nv))
        scratch["stack_rows"] = rows
        pos = scratch.get("pos")
        if pos is None or len(pos) != n_rows:
            pos = np.empty(n_rows, dtype=np.intp)
            scratch["pos"] = pos
        pos[rows] = np.arange(n_rows, dtype=np.intp)
    else:
        out2d = _fp_buffer(scratch, "out", nb * k, (m,))
        backend.apply_wt(W, Ys, out=out2d.reshape(nb, k, m))  # (Y_i W_i)^T
        XT[rows] = out2d
        if VT is not None:
            vout2d = _fp_buffer(scratch, "vout", nb * k, (nv,))
            backend.apply_wt(W, Vs, out=vout2d.reshape(nb, k, nv))
            VT[rows] = vout2d
    row_of_col[tgt_arr.reshape(-1)] = rows
    return stats, worst


def _solve_gram_many(
    X: np.ndarray,
    V: np.ndarray | None,
    pair_cols: "list[np.ndarray] | np.ndarray",
    tol: float,
    sort: str | None,
    inner_sweeps: int,
    executor=None,
    sanitizer=None,
    backend: ComputeBackend | None = None,
) -> tuple[RotationStats, float]:
    """BLAS-3 Gram-space solve of a whole step's met pairs at once.

    One stacked Gram form ``G_i = Y_i^T Y_i``, one batched small Jacobi
    (:func:`repro.eig.gram_eigh_batched`), one stacked application
    ``Y_i <- Y_i W_i`` / ``V_i <- V_i W_i`` — every flop is a batched
    GEMM over the ``(nb, 2b, *)`` stack.

    With an ``executor``, the two GEMM phases (gather/Gram-form and
    apply/scatter) are chunked over the batch dimension: each chunk
    gathers and writes only its own ``[lo:hi]`` slice of the
    preallocated stacks, and each 2D GEMM inside the batch is computed
    exactly as in the serial path, so the result is bit-identical for
    any worker count.  The inner Jacobi between the phases is
    deliberately one full-stack call: its convergence floor couples
    matrices across the batch (a converged-by-floor block in a mixed
    batch would receive extra rotations if batches were split), so
    chunking it would break the determinism contract.
    """
    backend = backend if backend is not None else numpy_backend()
    stats = RotationStats()
    k = len(pair_cols[0])
    require(all(len(c) == k for c in pair_cols),
            "all block pairs of a step must have equal width")
    cols_arr = np.asarray(pair_cols, dtype=np.intp)
    nb = len(cols_arr)
    m = X.shape[0]
    Ys = _scratch(executor, "Ys", (nb, k, m))  # Ys[i] = Y_i^T
    G = _scratch(executor, "G", (nb, k, k))

    chunked = executor is not None and executor.workers > 1
    form_arrays = {"X": X, "Ys": Ys, "G": G}
    form_payload = dict(cols=cols_arr, k=k, m=m, backend=backend)
    if chunked:
        executor.run_shared(nb, _task_gram_form, form_arrays, **form_payload)
    else:
        _task_gram_form(form_arrays, 0, nb, **form_payload)
    G, d, floor, worst = _gram_measure(G, cols_arr, k, tol)
    if worst <= tol:
        # already orthogonal: only the norm-ordering convention may act
        _apply_sort_only(X, V, pair_cols, d, sort, stats, sanitizer)
        return stats, worst
    W, rotations, tgt_arr = _gram_factors(G, cols_arr, tol, sort,
                                          inner_sweeps, floor, backend)
    stats.applied = rotations
    n = V.shape[0] if V is not None else 0
    if chunked:
        # the rotation factors cross the process boundary as shared
        # memory too: one small copy instead of per-chunk pickles
        Wb = _scratch(executor, "W", W.shape)
        Wb[...] = W
        W = Wb
    apply_arrays = {"X": X, "Ys": Ys, "W": W}
    if V is not None:
        apply_arrays["V"] = V
    apply_payload = dict(cols=cols_arr, tgt=tgt_arr, k=k, m=m, n=n,
                         backend=backend)
    if chunked:
        executor.run_shared(nb, _task_gram_apply, apply_arrays,
                            **apply_payload)
    else:
        _task_gram_apply(apply_arrays, 0, nb, **apply_payload)
    if sanitizer is not None:
        for lo, hi in _phase_bounds(executor, nb, chunked):
            sanitizer.record_touch(lo, hi, tgt_arr[lo:hi].reshape(-1))
    return stats, worst


def solve_block_step_batch(
    Xs: np.ndarray,
    Vs: np.ndarray | None,
    items: np.ndarray,
    pair_cols: "list[np.ndarray] | np.ndarray",
    tol: float,
    sort: str | None,
    inner_sweeps: int,
    kernel: str = "gram",
    executor=None,
    compute_backend: "str | ComputeBackend | None" = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Solve one schedule step for *many problem matrices* at once.

    The many-matrix analogue of :func:`solve_block_step`: ``Xs`` is a
    ``(B, m, n)`` stack of independent problems (``Vs`` the matching
    ``(B, n, n)`` stack of accumulated factors, or ``None``), ``items``
    the batch indices still iterating, and ``pair_cols`` the step's met
    block pairs — shared by every item, because all problems of a batch
    run the same compiled schedule.  Returns per-item arrays
    ``(applied, worst)`` aligned with ``items``.

    The contract is the batch API's: **bit-identical to solving each
    matrix alone**.  The gram kernel fuses the problem axis into its
    stacked GEMM phases — one ``(len(items) * n_pairs, 2b, m)``
    gather/Gram-form and one apply/scatter — while the inner Gram
    Jacobi runs through :func:`repro.eig.gram_eigh_grouped` with one
    *convergence group per problem*, so no problem's rotation sequence
    ever depends on its batch neighbours.  The per-pair kernels loop
    over the items.  ``executor`` chunks the *batch axis* (items, not
    GEMM rows, are the unit of parallel work); chunks write disjoint
    ``Xs[i]`` slices and merge in chunk order, so any worker count
    yields the same bits.

    A poisoned item (non-finite Gram blocks or rotation factors) is
    delegated alone to :func:`solve_block_step`'s body, which re-raises
    the same breakdown from the untouched columns and walks the same
    per-pair fallback chain a solo run would.
    """
    require(sort in _SORT_MODES, f"sort must be one of {_SORT_MODES}, got {sort!r}")
    require(kernel in BLOCK_KERNELS,
            f"unknown block kernel {kernel!r}; "
            f"available: {', '.join(BLOCK_KERNELS)}")
    items = np.asarray(items, dtype=np.intp)
    if items.size == 0 or len(pair_cols) == 0:
        return np.zeros(items.size, dtype=np.intp), np.zeros(items.size)
    backend = resolve_compute_backend(compute_backend)

    arrays = {"Xs": Xs}
    if Vs is not None:
        arrays["Vs"] = Vs
    payload = dict(items=items, cols=pair_cols, tol=tol, sort=sort,
                   inner_sweeps=inner_sweeps, kernel=kernel, backend=backend)
    if executor is None or executor.workers == 1 or items.size == 1:
        return _task_batch_items(arrays, 0, items.size, **payload)
    applied = np.empty(items.size, dtype=np.intp)
    worst = np.empty(items.size)
    pos = 0
    for ap, wo in executor.run_shared(items.size, _task_batch_items,
                                      arrays, **payload):
        applied[pos:pos + len(ap)] = ap
        worst[pos:pos + len(wo)] = wo
        pos += len(ap)
    return applied, worst


def _task_batch_items(
    arrays: dict, lo: int, hi: int, *, items, cols, tol, sort,
    inner_sweeps, kernel, backend,
) -> tuple[np.ndarray, np.ndarray]:
    """Chunk task of the batch path: solve batch items ``[lo, hi)``."""
    Xs = arrays["Xs"]
    Vs = arrays.get("Vs")
    sub = items[lo:hi]
    if kernel == "gram":
        return _solve_gram_batch(Xs, Vs, sub, cols, tol, sort,
                                 inner_sweeps, backend)
    applied = np.zeros(hi - lo, dtype=np.intp)
    worst = np.zeros(hi - lo)
    for j, i in enumerate(sub):
        st, mx = _solve_step_body(
            Xs[i], None if Vs is None else Vs[i], cols, tol, sort,
            inner_sweeps, kernel, None, None, backend)
        applied[j] = st.applied
        worst[j] = mx
    return applied, worst


def _expand_groups(pos: np.ndarray, nb: int) -> np.ndarray:
    """Stack-row indices of the ``nb``-pair groups at positions ``pos``."""
    return (pos[:, None] * nb + np.arange(nb, dtype=np.intp)).reshape(-1)


def _apply_sort_only_batch(
    Xs: np.ndarray,
    Vs: np.ndarray | None,
    rows: np.ndarray,
    cols_arr: np.ndarray,
    d: np.ndarray,
    sort: str | None,
) -> None:
    """Vectorised :func:`_apply_sort_only` across problem matrices.

    ``rows`` are batch indices, ``d`` the ``(len(rows) * nb, k)``
    squared norms aligned with them.  Pairs already in norm order are
    rewritten with their own values — a bitwise no-op — so the whole
    permutation is two gather/scatter pairs regardless of batch size.
    """
    if sort is None:
        return
    nb, k = cols_arr.shape
    if sort == "desc":
        perm = np.argsort(-d, axis=1, kind="stable")
    else:
        perm = np.argsort(d, axis=1, kind="stable")
    cols_tiled = np.tile(cols_arr, (len(rows), 1))
    src = np.take_along_axis(cols_tiled, perm, axis=1)
    src_rows = src.reshape(len(rows), nb * k)
    tgt_flat = np.sort(cols_arr, axis=1).reshape(-1)
    XsT = Xs.transpose(0, 2, 1)
    XsT[np.ix_(rows, tgt_flat)] = XsT[rows[:, None], src_rows]
    if Vs is not None:
        VsT = Vs.transpose(0, 2, 1)
        VsT[np.ix_(rows, tgt_flat)] = VsT[rows[:, None], src_rows]


def _solve_gram_batch(
    Xs: np.ndarray,
    Vs: np.ndarray | None,
    items: np.ndarray,
    pair_cols: "list[np.ndarray] | np.ndarray",
    tol: float,
    sort: str | None,
    inner_sweeps: int,
    backend: ComputeBackend | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """The gram kernel's problem-axis super-batch (see
    :func:`solve_block_step_batch`): :func:`_solve_gram_many` with the
    batch dimension extended from ``n_pairs`` to ``B x n_pairs`` and
    every per-matrix decision (sort-only early exit, inner-Jacobi
    convergence, breakdown delegation) taken per problem."""
    backend = backend if backend is not None else numpy_backend()
    nm = items.size
    k = len(pair_cols[0])
    require(all(len(c) == k for c in pair_cols),
            "all block pairs of a step must have equal width")
    cols_arr = np.asarray(pair_cols, dtype=np.intp)
    nb = len(cols_arr)
    m = Xs.shape[1]
    allcols = cols_arr.reshape(-1)
    applied = np.zeros(nm, dtype=np.intp)
    worst_out = np.zeros(nm)

    XsT = Xs.transpose(0, 2, 1)  # (B, n, m) view of the column stacks
    Ys = XsT[np.ix_(items, allcols)].reshape(nm * nb, k, m)
    G = backend.gram(Ys)

    def delegate(j: int) -> None:
        # the solo path re-forms this item's Gram blocks from its still
        # untouched columns, hits the same breakdown, and walks the same
        # fallback chain — bit-identical to a standalone run
        st, mx = _solve_step_body(
            Xs[items[j]], None if Vs is None else Vs[items[j]], pair_cols,
            tol, sort, inner_sweeps, "gram", None, None, backend)
        applied[j] = st.applied
        worst_out[j] = mx

    finite = np.isfinite(G).reshape(nm, -1).all(axis=1)
    keep = np.flatnonzero(finite)
    for j in np.flatnonzero(~finite):
        delegate(int(j))
    if keep.size == 0:
        return applied, worst_out
    if keep.size < nm:
        sel = _expand_groups(keep, nb)
        Ys = Ys[sel]
        G = G[sel]
    # gemm output is symmetric only to rounding (see _solve_gram_many)
    G = 0.5 * (G + G.transpose(0, 2, 1))
    d = np.diagonal(G, axis1=1, axis2=2)  # (keep * nb, k) squared norms
    gmax = d.max(axis=1)
    floor = GRAM_NOISE * k * _EPS * gmax
    fdiv = (floor / tol)[:, None] if tol > 0.0 else np.zeros((len(G), 1))
    i0, i1 = _triu_cache(k)
    denom = np.sqrt(np.abs(d[:, i0] * d[:, i1]))
    rel = np.abs(G[:, i0, i1]) / (denom + fdiv + _TINY)
    relw = rel.reshape(keep.size, -1).max(axis=1)
    worst_out[keep] = relw

    so_mask = relw <= tol
    so_local = np.flatnonzero(so_mask)
    if so_local.size:
        # already orthogonal: only the norm-ordering convention may act
        _apply_sort_only_batch(Xs, Vs, items[keep[so_local]], cols_arr,
                               d[_expand_groups(so_local, nb)], sort)
    sv_local = np.flatnonzero(~so_mask)
    if sv_local.size == 0:
        return applied, worst_out
    sel_sv = _expand_groups(sv_local, nb)
    Gs = G[sel_sv]
    Ws, rots, _, _ = gram_eigh_grouped(Gs, tol=tol, max_sweeps=inner_sweeps,
                                       floor=floor[sel_sv], group_size=nb,
                                       backend=backend)
    wfin = np.isfinite(Ws).reshape(sv_local.size, -1).all(axis=1)
    for j_local in np.flatnonzero(~wfin):
        delegate(int(keep[sv_local[j_local]]))
    ok_local = np.flatnonzero(wfin)
    if ok_local.size == 0:
        return applied, worst_out
    sel_ok = _expand_groups(ok_local, nb)
    W_ok = Ws[sel_ok]
    Ys_ok = Ys[_expand_groups(sv_local[ok_local], nb)]
    if sort is not None:
        d2 = np.diagonal(Gs, axis1=1, axis2=2)[sel_ok]
        if sort == "desc":
            perm = np.argsort(-d2, axis=1, kind="stable")
        else:
            perm = np.argsort(d2, axis=1, kind="stable")
        W_ok = np.take_along_axis(W_ok, perm[:, None, :], axis=2)
        tgt_flat = np.sort(cols_arr, axis=1).reshape(-1)
    else:
        tgt_flat = allcols
    rows = items[keep[sv_local[ok_local]]]
    out = backend.apply_wt(W_ok, Ys_ok)  # (Y_i W_i)^T per pair
    XsT[np.ix_(rows, tgt_flat)] = out.reshape(rows.size, nb * k, m)
    if Vs is not None:
        n = Vs.shape[2]
        VsT = Vs.transpose(0, 2, 1)
        Vg = VsT[np.ix_(rows, allcols)].reshape(rows.size * nb, k, n)
        vout = backend.apply_wt(W_ok, Vg)
        VsT[np.ix_(rows, tgt_flat)] = vout.reshape(rows.size, nb * k, n)
    applied[keep[sv_local[ok_local]]] = rots[ok_local]
    return applied, worst_out
