"""Unit tests for the plane-rotation kernels."""

import numpy as np
import pytest

from repro.svd.rotations import (
    apply_step_rotations,
    apply_step_rotations_batched,
    column_norms_sq,
    rotation_params,
)


class TestRotationParams:
    def test_identity_when_gamma_zero(self):
        c, s = rotation_params(np.array([2.0]), np.array([3.0]), np.array([0.0]))
        assert c[0] == 1.0 and s[0] == 0.0

    def test_orthogonalises(self):
        rng = np.random.default_rng(3)
        for _ in range(100):
            x = rng.standard_normal(6)
            y = rng.standard_normal(6)
            a, b, g = x @ x, y @ y, x @ y
            c, s = rotation_params(np.array([a]), np.array([b]), np.array([g]))
            xn = c[0] * x - s[0] * y
            yn = s[0] * x + c[0] * y
            assert abs(xn @ yn) < 1e-10 * max(1.0, abs(g))

    def test_forty_five_degrees_when_equal_norms(self):
        x = np.array([1.0, 1.0])
        y = np.array([1.0, -1.0 + 2.0])  # y = (1, 1)? keep equal norms
        y = np.array([1.0, 1.0])
        a, b, g = 2.0, 2.0, 2.0
        c, s = rotation_params(np.array([a]), np.array([b]), np.array([g]))
        assert c[0] == pytest.approx(s[0])

    def test_norm_preservation(self):
        rng = np.random.default_rng(4)
        x = rng.standard_normal(5)
        y = rng.standard_normal(5)
        a, b, g = x @ x, y @ y, x @ y
        c, s = rotation_params(np.array([a]), np.array([b]), np.array([g]))
        xn = c[0] * x - s[0] * y
        yn = s[0] * x + c[0] * y
        assert xn @ xn + yn @ yn == pytest.approx(a + b)

    def test_vectorised_matches_scalar(self):
        rng = np.random.default_rng(5)
        a = rng.uniform(0.5, 2.0, 10)
        b = rng.uniform(0.5, 2.0, 10)
        g = rng.uniform(-0.5, 0.5, 10)
        c, s = rotation_params(a, b, g)
        for i in range(10):
            ci, si = rotation_params(a[i:i+1], b[i:i+1], g[i:i+1])
            assert ci[0] == pytest.approx(c[i])
            assert si[0] == pytest.approx(s[i])


class TestApplyStepRotations:
    def test_orthogonalises_pairs(self, rng):
        X = rng.standard_normal((10, 6))
        left = np.array([0, 2, 4])
        right = np.array([1, 3, 5])
        apply_step_rotations(X, None, left, right, 0.0, None)
        for l, r in zip(left, right):
            assert abs(X[:, l] @ X[:, r]) < 1e-10

    def test_empty_pairs_noop(self, rng):
        X = rng.standard_normal((4, 2))
        before = X.copy()
        st, mx = apply_step_rotations(X, None, np.array([], dtype=np.intp),
                                      np.array([], dtype=np.intp), 0.0, None)
        assert np.array_equal(X, before)
        assert mx == 0.0 and st.applied == 0

    def test_threshold_skips(self, rng):
        # two already-orthogonal columns: no rotation, counted as skipped
        X = np.eye(4)[:, :2] * 2.0
        st, mx = apply_step_rotations(X, None, np.array([0]), np.array([1]), 1e-12, None)
        assert st.applied == 0 and st.skipped == 1
        assert mx <= 1e-12

    def test_sort_desc_places_larger_left(self, rng):
        X = rng.standard_normal((12, 8))
        left = np.arange(0, 8, 2)
        right = np.arange(1, 8, 2)
        apply_step_rotations(X, None, left, right, 0.0, "desc")
        norms = np.linalg.norm(X, axis=0)
        assert np.all(norms[left] >= norms[right] - 1e-12)

    def test_sort_asc_places_smaller_left(self, rng):
        X = rng.standard_normal((12, 8))
        left = np.arange(0, 8, 2)
        right = np.arange(1, 8, 2)
        apply_step_rotations(X, None, left, right, 0.0, "asc")
        norms = np.linalg.norm(X, axis=0)
        assert np.all(norms[left] <= norms[right] + 1e-12)

    def test_v_tracks_rotations(self, rng):
        A = rng.standard_normal((10, 6))
        X = A.copy()
        V = np.eye(6)
        left = np.array([0, 2, 4])
        right = np.array([1, 3, 5])
        apply_step_rotations(X, V, left, right, 0.0, "desc")
        # X must equal A @ V at all times
        assert np.allclose(X, A @ V)

    def test_idle_exchange_counted(self):
        # orthogonal columns in the 'wrong' norm order get exchanged
        X = np.zeros((4, 2))
        X[0, 0] = 1.0   # small norm left
        X[1, 1] = 5.0   # large norm right
        st, _ = apply_step_rotations(X, None, np.array([0]), np.array([1]), 1e-12, "desc")
        assert st.exchanged == 1
        assert np.linalg.norm(X[:, 0]) > np.linalg.norm(X[:, 1])

    def test_no_exchange_when_sorted(self):
        X = np.zeros((4, 2))
        X[0, 0] = 5.0
        X[1, 1] = 1.0
        st, _ = apply_step_rotations(X, None, np.array([0]), np.array([1]), 1e-12, "desc")
        assert st.exchanged == 0

    def test_gram_off_mass_decreases(self, rng):
        from repro.svd.convergence import off_norm

        X = rng.standard_normal((16, 8))
        before = off_norm(X)
        apply_step_rotations(X, None, np.arange(0, 8, 2), np.arange(1, 8, 2), 0.0, "desc")
        assert off_norm(X) <= before + 1e-12

    def test_frobenius_norm_invariant(self, rng):
        X = rng.standard_normal((16, 8))
        f = np.linalg.norm(X)
        apply_step_rotations(X, None, np.arange(0, 8, 2), np.arange(1, 8, 2), 0.0, "desc")
        assert np.linalg.norm(X) == pytest.approx(f)

    @pytest.mark.parametrize("sort", ["descending", "", "DESC"])
    def test_unrecognised_sort_rejected(self, sort):
        # regression: an unknown sort string used to silently disable
        # the sorting convention instead of failing
        X = np.eye(4)
        with pytest.raises(ValueError, match="sort"):
            apply_step_rotations(X, None, np.array([0]), np.array([1]), 0.0, sort)


def _as_rows(X):
    """Column-as-row working buffer + its squared-norm cache."""
    WT = np.ascontiguousarray(X.T)
    return WT, column_norms_sq(X).copy()


class TestConvergedButUnsortedStep:
    """Regression for the identity-rotation path: when *every* pair of a
    step is below threshold, the sorting convention must still be
    honoured — a fast path that returns early on 'no rotations' would
    silently skip the idle exchanges and break the sorted emergence of
    the singular values."""

    def _unsorted_orthogonal(self):
        # orthogonal columns with strictly ascending norms: under
        # sort="desc" every pair is converged yet needs an exchange
        X = np.diag([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        return X

    def test_reference_kernel_exchanges_all_idle_pairs(self):
        X = self._unsorted_orthogonal()
        st, mx = apply_step_rotations(
            X, None, np.array([0, 2, 4]), np.array([1, 3, 5]), 1e-12, "desc"
        )
        assert st.applied == 0 and st.exchanged == 3
        assert mx <= 1e-12
        norms = np.linalg.norm(X, axis=0)
        assert np.all(norms[[0, 2, 4]] > norms[[1, 3, 5]])

    def test_batched_kernel_exchanges_all_idle_pairs(self):
        X = self._unsorted_orthogonal()
        WT, norms_sq = _as_rows(X)
        P = np.array([[0, 1], [2, 3], [4, 5]], dtype=np.intp)
        st, mx = apply_step_rotations_batched(WT, P, 1e-12, "desc", norms_sq, 6)
        assert st.applied == 0 and st.exchanged == 3
        assert mx <= 1e-12
        norms = np.linalg.norm(WT, axis=1)
        assert np.all(norms[P[:, 0]] > norms[P[:, 1]])
        # the cache must have been exchanged alongside the columns
        assert np.allclose(norms_sq, norms**2)

    def test_batched_kernel_asc_mirror(self):
        X = self._unsorted_orthogonal()[:, ::-1].copy()
        WT, norms_sq = _as_rows(X)
        P = np.array([[0, 1], [2, 3], [4, 5]], dtype=np.intp)
        st, _ = apply_step_rotations_batched(WT, P, 1e-12, "asc", norms_sq, 6)
        assert st.applied == 0 and st.exchanged == 3
        norms = np.linalg.norm(WT, axis=1)
        assert np.all(norms[P[:, 0]] < norms[P[:, 1]])

    def test_batched_kernel_fully_idle_step_is_noop(self):
        # sorted AND converged: the early-exit path must not move data
        X = np.diag([6.0, 5.0, 4.0, 3.0, 2.0, 1.0])
        WT, norms_sq = _as_rows(X)
        before = WT.copy()
        P = np.array([[0, 1], [2, 3], [4, 5]], dtype=np.intp)
        st, _ = apply_step_rotations_batched(WT, P, 1e-12, "desc", norms_sq, 6)
        assert st.applied == 0 and st.exchanged == 0 and st.swapped == 0
        assert np.array_equal(WT, before)

    @pytest.mark.parametrize("kernel", ["reference", "batched"])
    def test_driver_sorts_converged_unsorted_input(self, kernel):
        # end-to-end: an already-diagonal matrix in ascending order must
        # come out sorted descending purely through idle exchanges
        from repro.svd import JacobiOptions, jacobi_svd

        a = np.zeros((10, 8))
        np.fill_diagonal(a, np.arange(1.0, 9.0))
        r = jacobi_svd(a, ordering="fat_tree",
                       options=JacobiOptions(kernel=kernel))
        assert r.converged
        assert r.emerged_sorted == "desc"
        assert np.allclose(r.sigma, np.arange(8.0, 0.0, -1.0))
        assert r.rotations == 0

    def test_batched_unrecognised_sort_rejected(self):
        X = np.eye(4)
        WT, norms_sq = _as_rows(X)
        P = np.array([[0, 1]], dtype=np.intp)
        with pytest.raises(ValueError, match="sort"):
            apply_step_rotations_batched(WT, P, 0.0, "descending", norms_sq, 4)


class TestBatchedKernelEquivalence:
    def test_single_step_matches_reference(self, rng):
        X = rng.standard_normal((12, 8))
        Xr = X.copy()
        WT, norms_sq = _as_rows(X)
        left = np.arange(0, 8, 2)
        right = np.arange(1, 8, 2)
        st_ref, mx_ref = apply_step_rotations(Xr, None, left, right, 0.0, "desc")
        P = np.column_stack((left, right)).astype(np.intp)
        st_bat, mx_bat = apply_step_rotations_batched(
            WT, P, 0.0, "desc", norms_sq, 12
        )
        assert st_ref.applied == st_bat.applied
        assert st_ref.swapped == st_bat.swapped
        assert mx_ref == pytest.approx(mx_bat, rel=1e-12)
        assert np.allclose(WT.T, Xr, atol=1e-13)

    def test_empty_step_noop(self):
        WT = np.eye(4)
        norms_sq = np.ones(4)
        st, mx = apply_step_rotations_batched(
            WT, np.empty((0, 2), dtype=np.intp), 0.0, "desc", norms_sq, 4
        )
        assert st.applied == 0 and mx == 0.0
