"""Distributed one-sided Jacobi SVD on the simulated tree machine.

``ParallelJacobiSVD`` is the parallel counterpart of
:func:`repro.svd.jacobi_svd`: the same sweep loop, but every phase runs
on a :class:`~repro.machine.TreeMachine`, producing a full execution
timeline alongside the decomposition.  Convergence detection models the
tree reduction a real machine would perform (an all-reduce over the
leaves costs one up-and-down traversal, charged per sweep).

Passing a :class:`~repro.blockjacobi.BlockJacobiOptions` (or
``block_size`` through :func:`repro.parallel_svd`) switches the driver
to *block* mode: the schedule runs on the ``n / b`` column blocks, each
message carries ``b`` columns, and the machine solves the local
``2b``-column subproblems with the chosen block kernel — the parallel
counterpart of :func:`repro.blockjacobi.block_jacobi_svd`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..blockjacobi.driver import BlockJacobiOptions
from ..core.result import SVDResult, SweepRecord
from ..machine.costmodel import CostModel
from ..machine.simulator import TreeMachine
from ..machine.stats import SweepStats
from ..machine.topology import TreeTopology, make_topology
from ..orderings.base import Ordering
from ..orderings.registry import make_ordering
from ..svd.convergence import off_norm
from ..svd.hestenes import JacobiOptions
from ..util.validation import require

__all__ = ["ParallelJacobiSVD", "ParallelRunReport"]


@dataclass
class ParallelRunReport:
    """Execution telemetry of a parallel run."""

    sweep_stats: list[SweepStats] = field(default_factory=list)

    @property
    def total_time(self) -> float:
        return sum(s.total_time for s in self.sweep_stats) + self.reduction_time

    @property
    def compute_time(self) -> float:
        return sum(s.compute_time for s in self.sweep_stats)

    @property
    def comm_time(self) -> float:
        return sum(s.comm_time for s in self.sweep_stats)

    @property
    def max_contention(self) -> float:
        return max((s.max_contention for s in self.sweep_stats), default=0.0)

    @property
    def contention_free(self) -> bool:
        return all(s.contention_free for s in self.sweep_stats)

    # one allreduce (up + down the tree) per sweep for the convergence flag
    reduction_time: float = 0.0


class ParallelJacobiSVD:
    """One-sided Jacobi SVD driver over a simulated tree machine."""

    def __init__(
        self,
        topology: TreeTopology | str = "cm5",
        ordering: Ordering | str = "hybrid",
        cost_model: CostModel | None = None,
        options: JacobiOptions | BlockJacobiOptions | None = None,
        **ordering_kwargs: object,
    ):
        self._topology_spec = topology
        self._ordering_spec = ordering
        self._ordering_kwargs = ordering_kwargs
        self.cost_model = cost_model or CostModel()
        self.options = options or JacobiOptions()

    @property
    def block_size(self) -> int | None:
        """Columns per schedule unit, or ``None`` in scalar mode."""
        if isinstance(self.options, BlockJacobiOptions):
            return self.options.block_size
        return None

    def _build(self, n: int) -> tuple[TreeMachine, Ordering]:
        b = self.block_size or 1
        require(n % (2 * b) == 0,
                f"n={n} must be a multiple of 2*block_size={2 * b} "
                "(two blocks per leaf)")
        n_units = n // b
        n_leaves = n_units // 2
        topo = (
            self._topology_spec
            if isinstance(self._topology_spec, TreeTopology)
            else make_topology(self._topology_spec, n_leaves)
        )
        require(topo.n_leaves == n_leaves,
                f"topology has {topo.n_leaves} leaves, matrix needs {n_leaves}")
        ordering = (
            self._ordering_spec
            if isinstance(self._ordering_spec, Ordering)
            else make_ordering(self._ordering_spec, n_units, **self._ordering_kwargs)
        )
        require(ordering.n == n_units, "ordering size mismatch")
        return TreeMachine(topo, self.cost_model), ordering

    def compute(
        self, a: np.ndarray, compute_uv: bool = True
    ) -> tuple[SVDResult, ParallelRunReport]:
        """Run the distributed SVD; returns (decomposition, telemetry)."""
        a = np.asarray(a, dtype=np.float64)
        m, n = a.shape
        # n > m is allowed for zero-padded inputs (at most m nonzero sigma)
        machine, ordering = self._build(n)
        opts = self.options
        block = isinstance(opts, BlockJacobiOptions)
        if block:
            machine.load(a, compute_v=compute_uv, kernel=opts.kernel,
                         block_size=opts.block_size,
                         inner_sweeps=opts.inner_sweeps)
        else:
            machine.load(a, compute_v=compute_uv, kernel=opts.kernel)
        report = ParallelRunReport()
        history: list[SweepRecord] = []
        converged = False
        sweeps = 0
        allreduce = (
            self.cost_model.alpha
            + 2 * self.cost_model.hop_time * max(1, machine.topology.n_levels)
        )
        for sweep in range(opts.max_sweeps):
            sched = ordering.sweep(sweep)
            sweep_stats, rstats, worst = machine.run_sweep(
                sched, tol=opts.tol, sort=opts.sort
            )
            report.sweep_stats.append(sweep_stats)
            report.reduction_time += allreduce
            sweeps = sweep + 1
            history.append(
                SweepRecord(
                    sweep=sweeps,
                    off_norm=off_norm(machine.X),
                    max_rel_gamma=worst,
                    rotations=rstats.applied,
                    skipped=rstats.skipped,
                )
            )
            # block mode matches the serial block driver: the local
            # solver leaves every met pair sorted, so no exchange check
            if worst <= opts.tol and (block or rstats.exchanged == 0):
                converged = True
                break

        X = machine.X
        V = machine.V
        norms = np.linalg.norm(X, axis=0)
        sigma_by_slot = norms.copy()
        scale = max(1.0, float(norms.max(initial=0.0)))
        diffs = np.diff(norms)
        if np.all(diffs <= 1e-9 * scale):
            emerged = "desc"
        elif np.all(diffs >= -1e-9 * scale):
            emerged = "asc"
        else:
            emerged = None
        order = np.argsort(-norms, kind="stable")
        sigma = norms[order]
        rank_tol = getattr(opts, "rank_tol", 1e-12)
        rank = int(np.count_nonzero(sigma > rank_tol * max(scale, 1e-300)))
        if compute_uv:
            u = np.zeros((m, n))
            nz = sigma > 0
            cols = X[:, order]
            u[:, nz] = cols[:, nz] / sigma[nz]
            v = V[:, order]
        else:
            u = np.zeros((m, 0))
            v = np.zeros((n, 0))
        result = SVDResult(
            u=u,
            sigma=sigma,
            v=v,
            rank=rank,
            converged=converged,
            sweeps=sweeps,
            rotations=sum(h.rotations for h in history),
            sigma_by_slot=sigma_by_slot,
            emerged_sorted=emerged,
            history=history,
        )
        return result, report
