"""Aggregated execution statistics of a simulated sweep."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..faults.events import FaultEvent

__all__ = ["StepRecord", "SweepStats"]


@dataclass
class StepRecord:
    """Per-step timing and traffic.

    ``retries`` and ``fault_events`` are populated only when a fault
    plan is installed: retransmission attempts of the ack/seq transport
    and the injection/recovery events that hit this step.
    """

    step: int
    rotations: int
    messages: int
    max_level: int
    contention: float
    compute_time: float
    comm_time: float
    retries: int = 0
    fault_events: tuple["FaultEvent", ...] = ()


@dataclass
class SweepStats:
    """Whole-sweep aggregates produced by the simulator."""

    steps: list[StepRecord] = field(default_factory=list)

    @property
    def total_time(self) -> float:
        return sum(s.compute_time + s.comm_time for s in self.steps)

    @property
    def compute_time(self) -> float:
        return sum(s.compute_time for s in self.steps)

    @property
    def comm_time(self) -> float:
        return sum(s.comm_time for s in self.steps)

    @property
    def total_messages(self) -> int:
        return sum(s.messages for s in self.steps)

    @property
    def max_contention(self) -> float:
        return max((s.contention for s in self.steps), default=0.0)

    @property
    def contention_free(self) -> bool:
        """True when no channel was ever oversubscribed (Section 5 claim)."""
        return self.max_contention <= 1.0

    @property
    def total_retries(self) -> int:
        """Retransmission attempts charged across the sweep (fault mode)."""
        return sum(s.retries for s in self.steps)

    @property
    def fault_events(self) -> list["FaultEvent"]:
        """All fault/recovery events of the sweep, in step order."""
        return [ev for s in self.steps for ev in s.fault_events]

    def level_histogram(self) -> dict[int, int]:
        hist: dict[int, int] = {}
        for s in self.steps:
            if s.messages:
                hist[s.max_level] = hist.get(s.max_level, 0) + s.messages
        return dict(sorted(hist.items()))
