"""FIG9 — the hybrid ordering for sixteen indices in four groups."""

from repro.analysis import fig9_hybrid_sixteen, step_table
from repro.orderings import check_all_pairs_once
from repro.orderings.hybrid import hybrid_sweep
from repro.util.formatting import render_step_table


def test_fig9_sixteen(benchmark):
    sched = benchmark(fig9_hybrid_sixteen, 16, 4)
    assert sched.n_rotation_steps == 15
    assert check_all_pairs_once(sched).is_valid
    rows = step_table(sched)
    # annotate the super-step boundaries the paper marks as "global"
    print("\n" + render_step_table(rows, title="Fig 9: hybrid ordering, 16 indices, 4 groups"))
    print("super-step boundaries after steps:", sched.notes["superstep_boundaries"])


def test_hybrid_construction_scales(benchmark):
    sched = benchmark(hybrid_sweep, 128, 16)
    assert sched.n_rotation_steps == 127
