"""Integration tests: the simulated machine and the parallel driver."""

import numpy as np
import pytest

from repro.machine import CostModel, TreeMachine, make_topology
from repro.orderings import make_ordering
from repro.parallel import ParallelJacobiSVD, pad_columns, strip_padding
from repro.svd import JacobiOptions, accuracy_report, jacobi_svd


class TestTreeMachine:
    def test_load_rejects_wrong_width(self, rng):
        m = TreeMachine(make_topology("perfect", 8))
        with pytest.raises(ValueError):
            m.load(rng.standard_normal((8, 10)))

    def test_requires_load_before_sweep(self):
        m = TreeMachine(make_topology("perfect", 8))
        with pytest.raises(ValueError):
            m.run_sweep(make_ordering("fat_tree", 16).sweep(0))

    def test_one_sweep_reduces_off_norm(self, rng):
        from repro.svd.convergence import off_norm

        a = rng.standard_normal((24, 16))
        m = TreeMachine(make_topology("perfect", 8))
        m.load(a)
        before = off_norm(m.X)
        m.run_sweep(make_ordering("fat_tree", 16).sweep(0))
        assert off_norm(m.X) < before

    def test_timeline_recorded(self, rng):
        a = rng.standard_normal((24, 16))
        m = TreeMachine(make_topology("cm5", 8))
        m.load(a)
        stats, _, _ = m.run_sweep(make_ordering("fat_tree", 16).sweep(0))
        assert len(stats.steps) >= 15
        assert stats.total_time > 0
        assert stats.total_messages == make_ordering("fat_tree", 16).sweep(0).total_messages()

    def test_machine_matches_serial_numerics(self, rng):
        # bit-compatibility: the machine path and the serial driver apply
        # identical kernels in identical order
        a = rng.standard_normal((24, 16))
        m = TreeMachine(make_topology("perfect", 8))
        m.load(a)
        sched = make_ordering("fat_tree", 16).sweep(0)
        m.run_sweep(sched, tol=1e-12, sort="desc")

        from repro.svd.hestenes import hestenes_sweeps
        from repro.orderings import FatTreeOrdering

        X = a.copy()
        V = np.eye(16)

        class OneSweep(FatTreeOrdering):
            pass

        o = OneSweep(16)
        hestenes_sweeps(X, V, o, JacobiOptions(max_sweeps=1))
        assert np.array_equal(m.X, X)
        assert np.array_equal(m.V, V)

    def test_column_norms(self, rng):
        a = rng.standard_normal((10, 8))
        m = TreeMachine(make_topology("perfect", 4))
        m.load(a)
        assert np.allclose(m.column_norms(), np.linalg.norm(a, axis=0))


class TestParallelJacobiSVD:
    @pytest.mark.parametrize("topology", ["perfect", "cm5", "binary"])
    @pytest.mark.parametrize("ordering", ["fat_tree", "ring_new", "hybrid"])
    def test_converges_and_matches_lapack(self, rng, topology, ordering):
        a = rng.standard_normal((24, 16))
        kw = {"n_groups": 4} if ordering == "hybrid" else {}
        driver = ParallelJacobiSVD(topology=topology, ordering=ordering, **kw)
        result, report = driver.compute(a)
        assert result.converged
        ref = np.linalg.svd(a, compute_uv=False)
        assert np.max(np.abs(result.sigma - ref)) < 1e-12 * ref[0]
        assert report.total_time > 0

    def test_matches_serial_driver_exactly(self, rng):
        a = rng.standard_normal((24, 16))
        serial = jacobi_svd(a, ordering="fat_tree")
        par, _ = ParallelJacobiSVD(topology="perfect", ordering="fat_tree").compute(a)
        assert np.array_equal(serial.sigma, par.sigma)
        assert np.array_equal(serial.u, par.u)
        assert np.array_equal(serial.v, par.v)
        assert serial.sweeps == par.sweeps

    def test_hybrid_contention_free_on_cm5(self, rng):
        a = rng.standard_normal((48, 32))
        driver = ParallelJacobiSVD(topology="cm5", ordering="hybrid", n_groups=8)
        _, report = driver.compute(a)
        assert report.contention_free

    def test_fat_tree_contends_on_binary(self, rng):
        a = rng.standard_normal((48, 32))
        _, report = ParallelJacobiSVD(topology="binary", ordering="fat_tree").compute(a)
        assert report.max_contention > 1.0

    def test_telemetry_decomposes(self, rng):
        a = rng.standard_normal((24, 16))
        _, report = ParallelJacobiSVD(topology="cm5", ordering="fat_tree").compute(a)
        assert report.total_time == pytest.approx(
            report.compute_time + report.comm_time + report.reduction_time
        )

    def test_topology_size_mismatch_rejected(self, rng):
        driver = ParallelJacobiSVD(topology=make_topology("perfect", 4), ordering="fat_tree")
        with pytest.raises(ValueError):
            driver.compute(rng.standard_normal((24, 16)))

    def test_odd_width_rejected(self, rng):
        with pytest.raises(ValueError):
            ParallelJacobiSVD().compute(rng.standard_normal((9, 7)))


class TestPadding:
    def test_pad_to_power_of_two(self, rng):
        a = rng.standard_normal((10, 5))
        padded, orig = pad_columns(a, power_of_two=True)
        assert padded.shape == (10, 8)
        assert orig == 5
        assert np.array_equal(padded[:, :5], a)
        assert np.all(padded[:, 5:] == 0)

    def test_pad_even(self, rng):
        a = rng.standard_normal((10, 5))
        padded, orig = pad_columns(a, power_of_two=False)
        assert padded.shape == (10, 6)

    def test_no_pad_when_admissible(self, rng):
        a = rng.standard_normal((10, 8))
        padded, orig = pad_columns(a)
        assert padded.shape == a.shape

    def test_strip_padding_roundtrip(self, rng):
        a = rng.standard_normal((12, 6))
        padded, orig = pad_columns(a)
        r = jacobi_svd(padded, allow_wide=True)
        r = strip_padding(r, orig)
        ref = np.linalg.svd(a, compute_uv=False)
        assert np.max(np.abs(r.sigma - ref)) < 1e-12 * ref[0]
        assert r.u.shape == (12, 6)
        assert np.linalg.norm(a - (r.u * r.sigma) @ r.v.T) < 1e-10
