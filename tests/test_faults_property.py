"""Property-based chaos suite: ANY seeded single-fault plan must either
recover to the fault-free singular values or fail explicitly.

The strategy draws a fault kind, an ordering, a payload mode and a seed;
the plan is placed on the first remote move of the sweep-0 schedule so
it always fires.  Three invariants are checked on every example:

* recovered sigma matches the fault-free run to 1e-8 (n=16, all three
  paper orderings),
* the simulator terminates (bounded retries by construction — the test
  finishing is the witness),
* every injected fault is recorded in the result's event trail.
"""

import warnings

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import ConvergenceWarning, FaultPlan, parallel_svd
from repro.faults.campaign import ORDERINGS, CampaignCase, single_fault_plan
from repro.faults.corruptions import PAYLOAD_MODES
from repro.faults.plan import FAULT_KINDS

N = 16
_MATRIX = np.random.default_rng(99).standard_normal((N + 8, N))
_BASELINES = {}


def _baseline(ordering):
    if ordering not in _BASELINES:
        _BASELINES[ordering] = parallel_svd(
            _MATRIX, topology="perfect", ordering=ordering)
    return _BASELINES[ordering]


# negate preserves both finiteness and the Frobenius invariant, so it is
# undetectable when silent — the checksummed non-silent kind covers it
_SILENT_MODES = tuple(m for m in PAYLOAD_MODES if m != "negate")


@st.composite
def fault_scenarios(draw):
    ordering = draw(st.sampled_from(ORDERINGS))
    kind = draw(st.sampled_from(FAULT_KINDS))
    seed = draw(st.integers(min_value=0, max_value=2 ** 16))
    mode = draw(st.sampled_from(
        _SILENT_MODES if kind == "corrupt_silent" else PAYLOAD_MODES))
    return ordering, kind, seed, mode


@given(fault_scenarios())
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_any_single_fault_recovers_or_fails_explicitly(scenario):
    ordering, kind, seed, mode = scenario
    plan = single_fault_plan(CampaignCase(ordering, kind, N))
    f = plan.faults[0]
    plan = FaultPlan(faults=(f.__class__(**{
        **{k: getattr(f, k) for k in (
            "kind", "sweep", "step", "src", "dst", "leaf", "level",
            "until_step", "duration", "fires")},
        "mode": mode if f.kind in ("corrupt", "corrupt_silent") else f.mode,
    }),), seed=seed)
    r0, _ = _baseline(ordering)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", ConvergenceWarning)
        r, rep = parallel_svd(_MATRIX, topology="perfect",
                              ordering=ordering, fault_plan=plan)
    # simulator terminated (we got here); the fault was recorded
    assert any(e.action == "injected" for e in r.fault_events), \
        f"{kind} on {ordering} left no trace"
    if r.converged:
        rel = float(np.max(np.abs(r.sigma - r0.sigma))) / float(r0.sigma[0])
        assert rel <= 1e-8, f"{kind} on {ordering}: sigma off by {rel:.2e}"
    else:
        # explicit failure only — there must be an unrecoverable marker
        assert any(e.action == "unrecoverable" for e in r.fault_events)


@given(st.integers(min_value=0, max_value=2 ** 16))
@settings(max_examples=10, deadline=None)
def test_same_seed_same_run(seed):
    plan = single_fault_plan(CampaignCase("fat_tree", "corrupt", N))
    plan = FaultPlan(faults=plan.faults, seed=seed)
    runs = []
    for _ in range(2):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ConvergenceWarning)
            r, rep = parallel_svd(_MATRIX, topology="perfect",
                                  ordering="fat_tree", fault_plan=plan)
        runs.append((r.sigma.copy(), rep.total_time,
                     len(r.fault_events)))
    assert np.array_equal(runs[0][0], runs[1][0])
    assert runs[0][1] == runs[1][1]
    assert runs[0][2] == runs[1][2]
