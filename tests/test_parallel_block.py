"""Block-granularity execution on the simulated tree machine.

The parallel block pipeline must be numerically identical to the serial
block driver (same schedule, same kernels, same block_cols indirection),
charge the cost model at block granularity (``b`` columns per message,
block subproblems per met pair), and thread ``block_size`` through the
core API with block-aware padding.
"""

import numpy as np
import pytest

from repro import parallel_svd, svd
from repro.blockjacobi import BlockJacobiOptions, block_jacobi_svd
from repro.machine.costmodel import CostModel
from repro.machine.simulator import TreeMachine
from repro.machine.topology import make_topology
from repro.orderings import make_ordering
from repro.parallel.distribution import next_admissible_width, pad_columns
from repro.parallel.driver import ParallelJacobiSVD


def _matrix(m: int, n: int, seed: int = 7) -> np.ndarray:
    return np.random.default_rng(seed).standard_normal((m, n))


class TestParallelBlockDriver:
    @pytest.mark.parametrize("kernel", ["reference", "batched", "gram"])
    @pytest.mark.parametrize("ordering", ["hybrid", "ring_new"])
    def test_bit_parity_with_serial_block_driver(self, kernel, ordering):
        a = _matrix(40, 32)
        opts = BlockJacobiOptions(block_size=4, kernel=kernel)
        par, _ = ParallelJacobiSVD(topology="cm5", ordering=ordering,
                                   options=opts).compute(a)
        ser = block_jacobi_svd(a, ordering=ordering, options=opts)
        assert par.converged and ser.converged
        assert par.sweeps == ser.sweeps
        assert np.array_equal(par.sigma, ser.sigma)
        assert np.array_equal(par.v, ser.v)
        assert np.array_equal(par.u, ser.u)

    def test_block_mode_matches_lapack(self):
        a = _matrix(72, 64)
        r, rep = ParallelJacobiSVD(
            topology="cm5", ordering="hybrid",
            options=BlockJacobiOptions(block_size=8),
        ).compute(a)
        assert r.converged
        lap = np.linalg.svd(a, compute_uv=False)
        assert np.max(np.abs(r.sigma - lap)) <= 1e-11 * lap[0]
        assert rep.total_time > 0

    def test_hybrid_stays_contention_free_at_block_granularity(self):
        a = _matrix(40, 32)
        _, rep = ParallelJacobiSVD(
            topology="cm5", ordering="hybrid",
            options=BlockJacobiOptions(block_size=4),
        ).compute(a)
        assert rep.contention_free
        assert rep.max_contention == 1.0

    def test_block_size_must_divide_columns(self):
        drv = ParallelJacobiSVD(options=BlockJacobiOptions(block_size=4))
        with pytest.raises(ValueError, match="multiple of 2\\*block_size"):
            drv.compute(_matrix(20, 12))

    def test_block_size_property(self):
        assert ParallelJacobiSVD().block_size is None
        drv = ParallelJacobiSVD(options=BlockJacobiOptions(block_size=4))
        assert drv.block_size == 4


class TestTreeMachineBlockMode:
    def _machine(self, n=32, b=4, kernel="gram"):
        topo = make_topology("cm5", n // b // 2)
        machine = TreeMachine(topo)
        machine.load(_matrix(n + 8, n), kernel=kernel, block_size=b)
        return machine

    def test_load_shapes_and_slots(self):
        machine = self._machine(n=32, b=4)
        assert machine.n_slots == 8       # 8 block slots on 4 leaves
        assert machine.n_columns == 32
        assert len(machine.block_cols) == 8
        assert np.array_equal(machine.block_cols[2], np.arange(8, 12))

    def test_step_records_are_block_granular(self):
        machine = self._machine(n=32, b=4)
        sched = make_ordering("ring_new", 8).sweep(0)
        stats, rstats, worst = machine.run_sweep(sched)
        assert worst > 0
        assert len(stats.steps) == len(sched.steps)
        for rec, step in zip(stats.steps, sched.steps):
            # one "rotation" per met block pair, at most one per leaf
            assert rec.rotations == len(step.pairs)
            if step.pairs:
                assert rec.compute_time == pytest.approx(
                    machine.cost.block_compute_time(1, 40, 4, 2)
                )
            if step.moves:
                assert rec.messages > 0
                assert rec.comm_time >= machine.cost.alpha

    def test_messages_carry_b_columns(self):
        cost = CostModel()
        m, n, b = 40, 32, 4
        machine = self._machine(n=n, b=b)
        sched = make_ordering("ring_new", 8).sweep(0)
        stats, _, _ = machine.run_sweep(sched)
        moved = [r for r in stats.steps if r.messages]
        assert moved
        # every route here is a single-hop neighbour exchange; the word
        # count must be b columns of (m + n) words each
        words = b * (m + n)
        for rec in moved:
            expect = (cost.alpha + cost.hop_time * 2 * rec.max_level
                      + cost.beta * words * max(1, int(np.ceil(rec.contention))))
            assert rec.comm_time == pytest.approx(expect)

    def test_block_compute_time_scales_with_subproblem(self):
        cost = CostModel()
        # b=1 with one inner sweep degenerates to the scalar charge
        assert cost.block_compute_time(1, 50, 1, 1) == cost.compute_time(1, 50)
        assert cost.block_compute_time(1, 50, 4, 2) == pytest.approx(
            2 * 4 * 7 * cost.rotation_flops(50) * cost.flop_time
        )

    def test_load_validates_block_kernel(self):
        topo = make_topology("cm5", 4)
        machine = TreeMachine(topo)
        with pytest.raises(ValueError, match="unknown block kernel"):
            machine.load(_matrix(40, 32), kernel="fused", block_size=4)
        with pytest.raises(ValueError, match="inner_sweeps"):
            machine.load(_matrix(40, 32), kernel="gram", block_size=4,
                         inner_sweeps=0)
        with pytest.raises(ValueError, match="machine holds"):
            machine.load(_matrix(40, 16), kernel="gram", block_size=4)

    def test_scalar_mode_unchanged_by_block_api(self):
        topo = make_topology("cm5", 4)
        machine = TreeMachine(topo)
        machine.load(_matrix(16, 8), kernel="reference")
        assert machine.block_size is None
        assert machine.block_cols is None
        assert machine.n_columns == 8


class TestBlockPadding:
    def test_next_admissible_width_blocks(self):
        assert next_admissible_width(60, power_of_two=True, block_size=4) == 64
        assert next_admissible_width(33, power_of_two=True, block_size=4) == 64
        assert next_admissible_width(64, power_of_two=True, block_size=8) == 64
        assert next_admissible_width(8, power_of_two=False, block_size=4) == 8
        assert next_admissible_width(12, power_of_two=False, block_size=8) == 16
        # scalar rule unchanged
        assert next_admissible_width(6, power_of_two=True) == 8
        assert next_admissible_width(5, power_of_two=False) == 6

    def test_pad_columns_block_aware(self):
        a = _matrix(70, 60)
        padded, orig = pad_columns(a, power_of_two=True, block_size=4)
        assert orig == 60
        assert padded.shape == (70, 64)
        assert np.array_equal(padded[:, :60], a)
        assert np.all(padded[:, 60:] == 0.0)


class TestCoreApiBlockMode:
    def test_svd_block_mode_with_padding(self):
        a = _matrix(70, 60)
        r = svd(a, ordering="fat_tree", block_size=4)
        assert r.converged
        lap = np.linalg.svd(a, compute_uv=False)
        assert r.sigma.shape == (60,)
        assert np.max(np.abs(r.sigma - lap)) <= 1e-11 * lap[0]

    def test_parallel_svd_block_mode_with_padding(self):
        a = _matrix(70, 60)
        r, rep = parallel_svd(a, topology="cm5", ordering="hybrid",
                              block_size=4)
        assert r.converged
        lap = np.linalg.svd(a, compute_uv=False)
        assert r.sigma.shape == (60,)
        assert np.max(np.abs(r.sigma - lap)) <= 1e-11 * lap[0]
        assert rep.contention_free

    def test_kernel_override_applies_to_block_options(self):
        a = _matrix(40, 32)
        r = svd(a, ordering="ring_new", block_size=4, kernel="batched")
        assert r.converged

    def test_block_options_passed_directly(self):
        a = _matrix(40, 32)
        opts = BlockJacobiOptions(block_size=8, kernel="gram")
        r = svd(a, ordering="ring_new", options=opts)
        assert r.converged
        lap = np.linalg.svd(a, compute_uv=False)
        assert np.max(np.abs(r.sigma - lap)) <= 1e-11 * lap[0]

    def test_gram_without_block_size_is_an_error(self):
        a = _matrix(12, 8)
        with pytest.raises(ValueError, match="block kernel"):
            svd(a, kernel="gram")
        with pytest.raises(ValueError, match="block kernel"):
            parallel_svd(a, kernel="gram")

    def test_unknown_block_kernel_rejected(self):
        a = _matrix(12, 8)
        with pytest.raises(ValueError, match="unknown block kernel"):
            svd(a, block_size=2, kernel="fused")
