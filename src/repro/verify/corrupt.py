"""Schedule corruption operators for negative testing of the verifier.

Each operator takes a healthy :class:`~repro.orderings.schedule.Schedule`
and returns a broken copy engineered to trip exactly one family of
rules, so the test-suite (and anyone fuzzing the gate) can assert that
the verifier catches each paper invariant's violation by rule ID:

==========================  ============================================
operator                    rule the verifier must fire
==========================  ============================================
:func:`duplicate_pair`      ``SWEEP001`` (pair rotated twice)
:func:`drop_exchange`       ``RACE003`` (send without receive)
:func:`reverse_ring_step`   ``DIR002`` (backward ring edge)
:func:`overload_link`       ``CAP003`` (oversubscribed channel)
:func:`overlap_chunk_writes`     ``EXEC001`` (chunk write-sets overlap)
:func:`split_unsplittable_stage` ``EXEC002`` (coupled stage split)
:func:`shuffle_chunk_bounds`     ``EXEC003`` (merge order broken)
:func:`skew_chunk_bounds`        ``EXEC004`` (load skew)
:func:`overlap_shared_ranges`    ``EXEC005`` (shared-memory ranges overlap)
:func:`tamper_fastpath_rows`     ``EXEC006`` (fast-path scatter row duplicated)
:func:`tamper_plan_pairs`        ``PLAN001`` (lowered arrays corrupted)
:func:`tamper_final_layout`      ``PLAN002`` (trajectory corrupted)
:func:`stale_plan_memo`          ``PLAN003`` (stale cached plan)
:func:`dead_host_map`            ``FT001`` (unsound degraded map)
:func:`break_fallback_chain`     ``FT002`` (malformed fallback chain)
:func:`stray_column_touch`       ``SAN001`` (out-of-set runtime write)
:func:`poison_factor`            ``SAN002`` (non-finite factor entry)
:func:`drift_factor`             ``SAN003`` (numeric invariant drift)
==========================  ============================================

Some corruptions are unrepresentable through the validating
constructors (``Step`` rejects non-permutation moves at build time),
which is exactly the scenario the verifier exists for: input that did
*not* come through our constructors.  The unchecked builders — shared
with the chaos-injection side in :mod:`repro.faults.corruptions` so
negative-test corruption and fault injection cannot drift apart — are
re-exported here for backwards compatibility.

The execution-layer operators work one level below the schedule: they
perturb :class:`~repro.verify.executor_plan.StagePlan` objects, compiled
plans, host maps, fallback tables, runtime write records and factor
matrices — each still engineered to trip exactly one rule.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..faults.corruptions import (
    first_remote_move,
    unchecked_schedule,
    unchecked_step,
)
from ..orderings.plan import (PLAN_MEMO_ATTR, CompiledSchedule, FastPathPlan,
                              lower_schedule)
from ..orderings.schedule import Move, Schedule, Step
from ..util.validation import require
from .executor_plan import SharedStagePlan, StagePlan

__all__ = [
    "unchecked_step",
    "unchecked_schedule",
    "duplicate_pair",
    "drop_exchange",
    "reverse_ring_step",
    "overload_link",
    "overlap_chunk_writes",
    "split_unsplittable_stage",
    "shuffle_chunk_bounds",
    "skew_chunk_bounds",
    "overlap_shared_ranges",
    "tamper_plan_pairs",
    "tamper_fastpath_rows",
    "tamper_final_layout",
    "stale_plan_memo",
    "dead_host_map",
    "break_fallback_chain",
    "stray_column_touch",
    "poison_factor",
    "drift_factor",
]


def duplicate_pair(schedule: Schedule) -> Schedule:
    """Rotate the first step's pairs twice: prepend a move-free copy.

    The inserted step performs the same rotations on the same (still
    unmoved) columns, so every index pair of the original first step is
    now met twice in the sweep — the paper's "exactly once per sweep"
    invariant broken with every step still locally well-formed.
    """
    require(bool(schedule.steps) and bool(schedule.steps[0].pairs),
            "schedule has no rotation step to duplicate")
    extra = Step(pairs=schedule.steps[0].pairs, moves=())
    out = Schedule(n=schedule.n, steps=[extra, *schedule.steps],
                   name=f"{schedule.name}+duplicate_pair")
    out.notes.update(schedule.notes)
    return out


def drop_exchange(schedule: Schedule) -> Schedule:
    """Remove one inter-leaf move: its payload column is never received.

    The resulting move set is no longer a partial permutation, which a
    validating constructor would reject — so the broken step is built
    unchecked, exactly like a schedule deserialized from an external
    (buggy) scheduler would arrive.
    """
    try:
        step_no, victim = first_remote_move(schedule)
    except ValueError:
        raise ValueError(
            f"{schedule.name} has no inter-leaf move to drop") from None
    k = step_no - 1
    step = schedule.steps[k]
    kept = tuple(m for m in step.moves if m is not victim)
    broken = unchecked_step(step.pairs, kept)
    steps = [*schedule.steps[:k], broken, *schedule.steps[k + 1:]]
    return unchecked_schedule(schedule.n, steps,
                              f"{schedule.name}+drop_exchange",
                              notes=schedule.notes)


def reverse_ring_step(schedule: Schedule) -> Schedule:
    """Reverse every move of the first communicating step.

    The reversed moves still form a valid partial permutation (the
    inverse one), but the messages of that step now travel in the
    opposite ring direction — the one-directionality of Section 4 is
    broken while all local validation still passes.
    """
    try:
        step_no, _ = first_remote_move(schedule)
    except ValueError:
        raise ValueError(
            f"{schedule.name} has no communicating step to reverse") from None
    k = step_no - 1
    step = schedule.steps[k]
    flipped = tuple(Move(m.dst, m.src) for m in step.moves)
    steps = [*schedule.steps[:k],
             Step(pairs=step.pairs, moves=flipped),
             *schedule.steps[k + 1:]]
    out = Schedule(n=schedule.n, steps=steps,
                   name=f"{schedule.name}+reverse_ring_step")
    out.notes.update(schedule.notes)
    return out


def overload_link(schedule: Schedule) -> Schedule:
    """Append a phase that swaps the machine's two halves in one step.

    Every leaf of the left half sends both of its columns across the
    root simultaneously: ``n/2`` messages through a top-level channel
    of capacity ``n/4`` on a perfect fat-tree — contention 2.0 on any
    of the modelled topologies.
    """
    n = schedule.n
    require(n >= 4, "need at least two leaves to overload the root")
    half = n // 2
    moves = tuple(Move(s, (s + half) % n) for s in range(n))
    flood = Step(pairs=(), moves=moves)
    out = Schedule(n=n, steps=[*schedule.steps, flood],
                   name=f"{schedule.name}+overload_link")
    out.notes.update(schedule.notes)
    return out


# ---------------------------------------------------------------------------
# execution-layer corruptions (EXEC/PLAN/FT/SAN rule families)
# ---------------------------------------------------------------------------


def overlap_chunk_writes(plan: StagePlan) -> StagePlan:
    """Leak one slot of chunk 0's write-set into chunk 1's.

    The bounds stay a perfect partition and every other set is
    untouched, so only the pairwise-disjointness proof (``EXEC001``)
    can object.
    """
    require(plan.n_chunks >= 2, "need at least two chunks to overlap")
    require(bool(plan.write_sets[0]), "chunk 0 writes nothing to leak")
    leaked = min(plan.write_sets[0])
    sets = list(plan.write_sets)
    sets[1] = sets[1] | {leaked}
    return dataclasses.replace(plan, write_sets=tuple(sets))


def split_unsplittable_stage(plan: StagePlan) -> StagePlan:
    """Split a batch-coupled stage (the inner Gram solve) in two.

    The halves are a clean in-order partition with disjoint batch-slice
    write-sets — locally everything looks fine; only the stage's
    ``splittable`` contract (``EXEC002``) is violated.
    """
    require(not plan.splittable, "stage is splittable; nothing to violate")
    require(plan.space == "batch",
            "only batch-space stages are declared unsplittable")
    require(plan.n_items >= 2, "need at least two items to split")
    mid = plan.n_items // 2
    return dataclasses.replace(
        plan,
        bounds=((0, mid), (mid, plan.n_items)),
        write_sets=(frozenset(range(0, mid)),
                    frozenset(range(mid, plan.n_items))),
    )


def shuffle_chunk_bounds(plan: StagePlan) -> StagePlan:
    """Reverse the chunk order: same coverage, wrong merge order.

    Write-sets travel with their bounds, so disjointness still holds —
    only the deterministic serial-merge contract (``EXEC003``) breaks.
    """
    require(plan.n_chunks >= 2, "need at least two chunks to reorder")
    return dataclasses.replace(
        plan,
        bounds=tuple(reversed(plan.bounds)),
        write_sets=tuple(reversed(plan.write_sets)),
    )


def skew_chunk_bounds(plan: StagePlan) -> StagePlan:
    """Rebalance the chunks pathologically: one giant chunk, the rest
    singletons.

    Still an in-order partition with disjoint write-sets (the giant
    chunk takes the whole union; the singletons claim nothing), so only
    the load-balance warning (``EXEC004``) fires.
    """
    require(plan.splittable, "unsplittable stages are never rebalanced")
    k = plan.n_chunks
    require(k >= 3, "need at least three chunks for a >= 2x skew")
    n = plan.n_items
    require(n >= 2 * k, "too few items for the giant chunk to dominate")
    head = n - (k - 1)
    bounds = [(0, head)]
    bounds += [(head + i, head + i + 1) for i in range(k - 1)]
    union: frozenset[int] = frozenset().union(*plan.write_sets)
    sets = [union] + [frozenset()] * (k - 1)
    return dataclasses.replace(plan, bounds=tuple(bounds),
                               write_sets=tuple(sets))


def overlap_shared_ranges(plan: SharedStagePlan) -> SharedStagePlan:
    """Leak chunk 0's first shared-memory interval into chunk 1's ranges.

    The bounds and every slot-level write-set stay untouched, so the
    address-space disjointness proof (``EXEC005``) is the only one that
    can object — ``EXEC001`` works on slots, not arena intervals, and
    never sees this object.
    """
    require(plan.n_chunks >= 2, "need at least two chunks to overlap")
    require(bool(plan.ranges[0]), "chunk 0 writes no shared range to leak")
    leaked = plan.ranges[0][0]
    ranges = list(plan.ranges)
    ranges[1] = tuple(sorted({*ranges[1], leaked}))
    return dataclasses.replace(plan, ranges=tuple(ranges))


def tamper_plan_pairs(schedule: Schedule) -> CompiledSchedule:
    """Corrupt the lowered pair arrays of the first rotating step.

    Swaps the two slots of the step's first pair in every derived array
    consistently — the plan is self-consistent but no longer lowers the
    source schedule, which only the re-elaboration pass (``PLAN001``)
    can see.  The trajectory is untouched, so ``PLAN002`` stays silent.
    """
    plan = lower_schedule(schedule)
    for k, cs in enumerate(plan.steps):
        if cs.n_pairs:
            pairs = cs.pairs.copy()
            pairs[0] = pairs[0][::-1]
            a = np.ascontiguousarray(pairs[:, 0])
            b = np.ascontiguousarray(pairs[:, 1])
            broken = dataclasses.replace(cs, pairs=pairs, a=a, b=b,
                                         pair_leaves=a >> 1)
            steps = (*plan.steps[:k], broken, *plan.steps[k + 1:])
            return dataclasses.replace(plan, steps=steps)
    raise ValueError(f"{schedule.name} has no rotating step to tamper with")


def tamper_final_layout(schedule: Schedule) -> CompiledSchedule:
    """Swap two entries of the compiled plan's final trajectory row.

    The per-step arrays are untouched (``PLAN001`` stays silent); only
    the independently re-walked trajectory (``PLAN002``) disagrees.
    """
    plan = lower_schedule(schedule)
    require(len(plan.trajectory) >= 1 and plan.n >= 2,
            "plan has no trajectory row to tamper with")
    trajectory = plan.trajectory.copy()
    trajectory[-1, 0], trajectory[-1, 1] = \
        trajectory[-1, 1], trajectory[-1, 0]
    trajectory.setflags(write=False)
    return dataclasses.replace(plan, trajectory=trajectory)


def tamper_fastpath_rows(schedule: Schedule) -> "tuple[CompiledSchedule, FastPathPlan]":
    """Duplicate a content row inside one fast-path step's pairs.

    The compiled plan itself stays sound (``PLAN*`` and the chunking
    rules stay silent); the returned fast-path bundle names one content
    row in two pairs of the first rotating step — the stacked-scatter
    write-write hazard only the fast-path projection (``EXEC006``) can
    see.  Returns ``(plan, corrupted_fastpath)`` for
    :func:`~repro.verify.executor_plan.check_fastpath_projection`.
    """
    plan = lower_schedule(schedule)
    fp = plan.fastpath()
    for k, pc in enumerate(fp.content_pairs):
        if len(pc) >= 2:
            pairs = pc.copy()
            pairs[1, 0] = pairs[0, 0]  # row now written by two pairs
            broken = (*fp.content_pairs[:k], pairs, *fp.content_pairs[k + 1:])
            return plan, dataclasses.replace(fp, content_pairs=broken)
    raise ValueError(f"{schedule.name} has no two-pair step to tamper with")


def stale_plan_memo(schedule: Schedule) -> Schedule:
    """Plant a plan of a *different* schedule under the instance memo.

    Models the failure the memo attribute could cause if schedules were
    ever mutated after compilation (or a fingerprint collided): the
    cache fast path serves a structurally wrong plan.  Only the
    cache-vs-fresh-lowering comparison (``PLAN003``) can notice.
    """
    victim = Schedule(n=schedule.n, steps=list(schedule.steps),
                      name=f"{schedule.name}+stale_plan_memo")
    victim.notes.update(schedule.notes)
    empty = Schedule(n=schedule.n, steps=[], name="empty")
    victim.__dict__[PLAN_MEMO_ATTR] = lower_schedule(empty)
    return victim


def dead_host_map(n_leaves: int) -> tuple[np.ndarray, set[int]]:
    """A degraded host map that never remapped the dead leaf.

    Leaf 0 is dead yet still hosts its own columns — the remap that
    graceful degradation guarantees simply did not happen (``FT001``).
    """
    require(n_leaves >= 2, "need at least two leaves")
    return np.arange(n_leaves, dtype=np.intp), {0}


def break_fallback_chain() -> dict[str, tuple[str, ...]]:
    """A fallback table whose gram chain dead-ends before ``reference``.

    A breakdown in the batched solver would leave no escape route to
    the always-works solver (``FT002``).
    """
    from ..blockjacobi.kernel import FALLBACK_CHAINS

    chains = {k: tuple(v) for k, v in FALLBACK_CHAINS.items()}
    chains["gram"] = ("gram", "batched")
    return chains


def stray_column_touch(
    expected_items: list[frozenset[int]],
) -> list[tuple[int, int, tuple[int, ...]]]:
    """A runtime touch record claiming one column no item may write.

    Feed to :func:`~repro.verify.sanitize.check_write_record` as the
    ``touched`` argument (``SAN001``).
    """
    require(bool(expected_items), "need at least one work item")
    stray = max((max(s) for s in expected_items if s), default=-1) + 1
    return [(0, len(expected_items), (stray,))]


def poison_factor(X: np.ndarray) -> np.ndarray:
    """Copy of a factor matrix with one entry poisoned to NaN (``SAN002``)."""
    out = np.array(X, dtype=float, copy=True)
    require(out.size > 0, "cannot poison an empty matrix")
    out.flat[0] = np.nan
    return out


def drift_factor(X: np.ndarray, factor: float = 1e-6) -> np.ndarray:
    """Copy of a factor matrix scaled just past the invariant tolerance.

    A uniform relative scaling keeps every entry finite (``SAN002``
    stays silent) while moving the Frobenius norm far beyond the
    sanitizer's ``1e-9`` relative drift budget (``SAN003``).
    """
    return np.array(X, dtype=float, copy=True) * (1.0 + factor)
