"""One-directionality and deadlock analysis of communication phases.

Two families of rules live here.

**Ring direction (DIR002/DIR003).**  Section 4's headline property: in
the new ring ordering "the messages travel between processors in only
one direction" and every message advances exactly one ring position.
:func:`ring_direction_violations` is the single source of truth for
this analysis; the boolean predicate
:func:`repro.orderings.properties.check_one_directional` is a thin
adapter over it.  A schedule built by
:func:`repro.orderings.ringnew.ring_sweep` declares its direction in
``schedule.notes["direction"]``; when no direction is declared the
checker infers it from the first inter-leaf move, so either ring
orientation is accepted as long as it is consistent.

**Deadlock freedom (DIR001).**  Each communication phase acquires a
set of directed tree channels; with blocking flow control a phase can
deadlock only if the channel-dependency graph — an edge from each
channel of a route to the next channel of the same route — has a
cycle.  On tree topologies every route climbs monotonically and then
descends (up channels before down channels, levels strictly ordered),
so the graph is provably acyclic; the checker verifies that property
on the actual routed paths rather than assuming it, which keeps the
gate meaningful if routing is ever extended (e.g. adjacency shortcuts
or a physical ring embedding).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from ..machine.topology import Channel, TreeTopology
from ..orderings.schedule import Schedule
from ..util.bits import leaf_of_slot
from .diagnostics import Diagnostic

__all__ = [
    "ring_direction_violations",
    "channel_dependency_cycle",
    "check_deadlock_free",
]


def ring_direction_violations(
    schedule: Schedule,
    ring_size: int | None = None,
    direction: int | None = None,
) -> list[Diagnostic]:
    """DIR002/DIR003 diagnostics for a ring-realized schedule.

    ``direction`` (+1/-1) pins the expected orientation; ``None`` means
    "use ``schedule.notes['direction']`` if declared, else infer from
    the first inter-leaf move".
    """
    P = ring_size if ring_size is not None else schedule.n // 2
    if direction is None:
        declared = schedule.notes.get("direction")
        direction = declared if declared in (+1, -1) else None
    out: list[Diagnostic] = []
    for step_no, step in enumerate(schedule.steps, start=1):
        for move in step.moves:
            src, dst = leaf_of_slot(move.src), leaf_of_slot(move.dst)
            if src == dst:
                continue
            delta = (dst - src) % P
            if delta not in (1, P - 1):
                out.append(Diagnostic(
                    rule="DIR003", step=step_no,
                    message=f"move {move.src}->{move.dst} jumps leaves "
                            f"{src}->{dst}: {min(delta, P - delta)} ring "
                            f"positions instead of 1",
                    details=(("src_leaf", src), ("dst_leaf", dst)),
                ))
                continue
            if P == 2:
                # on a two-processor ring delta 1 == P-1: the two
                # orientations coincide, so any single-hop move is fine
                continue
            this_dir = +1 if delta == 1 else -1
            if direction is None:
                direction = this_dir
            elif this_dir != direction:
                out.append(Diagnostic(
                    rule="DIR002", step=step_no,
                    message=f"move {move.src}->{move.dst} travels backward "
                            f"(leaves {src}->{dst}, direction {this_dir:+d} "
                            f"against the sweep's {direction:+d})",
                    details=(("src_leaf", src), ("dst_leaf", dst),
                             ("expected", direction)),
                ))
    return out


def channel_dependency_cycle(
    paths: Iterable[Sequence[Channel]],
) -> list[Channel] | None:
    """Find a cycle in the channel-dependency graph of one phase.

    Returns one witness cycle (a channel sequence whose last element
    depends on the first), or ``None`` if the graph is acyclic and the
    phase is deadlock-free under blocking flow control.
    """
    edges: dict[Channel, set[Channel]] = {}
    for path in paths:
        for a, b in zip(path, path[1:]):
            edges.setdefault(a, set()).add(b)
            edges.setdefault(b, set())
    WHITE, GREY, BLACK = 0, 1, 2
    color = {ch: WHITE for ch in edges}
    for root in edges:
        if color[root] != WHITE:
            continue
        stack: list[tuple[Channel, Iterable[Channel]]] = [(root, iter(edges[root]))]
        trail = [root]
        color[root] = GREY
        while stack:
            node, it = stack[-1]
            nxt = next(it, None)
            if nxt is None:
                color[node] = BLACK
                stack.pop()
                trail.pop()
                continue
            if color[nxt] == GREY:
                return trail[trail.index(nxt):]
            if color[nxt] == WHITE:
                color[nxt] = GREY
                stack.append((nxt, iter(edges[nxt])))
                trail.append(nxt)
    return None


def check_deadlock_free(
    schedule: Schedule, topology: TreeTopology
) -> list[Diagnostic]:
    """DIR001: per-step channel-dependency acyclicity on a topology."""
    out: list[Diagnostic] = []
    for step_no, step in enumerate(schedule.steps, start=1):
        paths = []
        for move in step.moves:
            src, dst = leaf_of_slot(move.src), leaf_of_slot(move.dst)
            if src != dst:
                paths.append(topology.path(src, dst))
        cycle = channel_dependency_cycle(paths)
        if cycle is not None:
            desc = " -> ".join(
                f"L{ch.level}{'u' if ch.up else 'd'}#{ch.index}" for ch in cycle
            )
            out.append(Diagnostic(
                rule="DIR001", step=step_no,
                message=f"cyclic channel dependency ({desc}): phase can "
                        f"deadlock under blocking flow control",
                details=(("cycle_length", len(cycle)),),
            ))
    return out
