"""Diagnostic vocabulary of the static schedule verifier.

Every checker in :mod:`repro.verify` reports findings as
:class:`Diagnostic` objects carrying a stable machine-readable rule ID
(``RACE001``, ``DIR002``, ``CAP003``, ...), so that the CLI, the CI
gate and the test-suite can assert on exact rules rather than on
message strings.  :data:`RULES` is the authoritative catalogue: one
entry per rule, each naming the paper invariant it enforces.

Severity semantics
------------------
``error``
    The schedule violates a correctness invariant (lost column, race,
    deadlock risk, broken sweep closure, oversubscribed channel).  Any
    error makes a :class:`Report` fail (``ok == False``).
``warning``
    Legal but costly behaviour the paper's orderings are designed to
    avoid (e.g. a rotation pair spanning two leaves).  Warnings never
    fail the gate; the cost model charges them instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["RULES", "Diagnostic", "Report", "rule_description"]


#: Rule catalogue: rule ID -> (severity, one-line description).
RULES: dict[str, tuple[str, str]] = {
    "RACE001": ("error", "slot appears in two rotation pairs of one step (write-write race)"),
    "RACE002": ("error", "two moves share a source or destination slot in one step"),
    "RACE003": ("error", "moves are not a partial permutation: a send has no matching "
                         "receive, so a column is lost or duplicated (dropped exchange)"),
    "RACE004": ("error", "column-to-slot placement stops being a bijection during the sweep"),
    "RACE005": ("warning", "rotation pair spans two leaves: both processors read and "
                           "update the same column pair in one step"),
    "DIR001": ("error", "cyclic channel dependency in a communication phase (deadlock risk)"),
    "DIR002": ("error", "ring message travels against the sweep's single direction "
                        "(backward edge)"),
    "DIR003": ("error", "ring message spans more than one ring position in one step"),
    "CAP001": ("error", "static per-level contention disagrees with the dynamic "
                        "analysis (internal cross-check)"),
    "CAP002": ("error", "message endpoint outside the topology (schedule does not fit "
                        "the machine)"),
    "CAP003": ("error", "channel load exceeds channel capacity in one phase "
                        "(oversubscribed link)"),
    "SWEEP001": ("error", "index pair rotated more than once in one sweep (duplicate pair)"),
    "SWEEP002": ("error", "index pair never rotated during the sweep (missing pair)"),
    "SWEEP003": ("error", "index order not restored within the allowed number of sweeps"),
    "EXEC001": ("error", "two executor chunks of one step stage write the same slot "
                         "(parallel write-write hazard)"),
    "EXEC002": ("error", "an unsplittable kernel stage (the batched inner Gram solve) "
                         "is split across executor chunks"),
    "EXEC003": ("error", "chunk bounds are not an in-order contiguous partition of the "
                         "step's work items (serial-merge order not deterministic)"),
    "EXEC004": ("warning", "executor chunking skews load: the largest chunk holds at "
                           "least twice the ideal per-chunk share"),
    "EXEC005": ("error", "process chunking unsound for shared memory: two chunks map "
                         "to overlapping shared-memory ranges, or the batch-coupled "
                         "inner Gram solve is split across processes"),
    "EXEC006": ("error", "fast-path write-set projection unsound: a step's stacked "
                         "scatter writes a content row twice, the content pairs "
                         "disagree with the event path's trajectory replay, or the "
                         "sweep's final layout is not a permutation"),
    "PLAN001": ("error", "compiled step arrays disagree with the source schedule "
                         "(pair/move lowering corrupted)"),
    "PLAN002": ("error", "compiled trajectory or final layout disagrees with the "
                         "schedule's move phases (sweep permutation corrupted)"),
    "PLAN003": ("error", "plan cache returned a plan whose structure disagrees with "
                         "the schedule (stale instance memo or fingerprint collision)"),
    "FT001": ("error", "a single-leaf failure leaves no sound degraded remap "
                       "(host map broken or degraded routing impossible)"),
    "FT002": ("error", "kernel fallback chain malformed: it does not walk registered "
                       "kernels down to the reference solver"),
    "SAN001": ("error", "runtime write-set violation: a worker touched columns outside "
                        "its static write-set, disjoint chunks overlapped, or the "
                        "dispatched bounds diverged from the static chunking"),
    "SAN002": ("error", "non-finite entry in the factors at a sweep boundary "
                        "(runtime numeric canary)"),
    "SAN003": ("error", "numeric invariant drifted at a sweep boundary "
                        "(Frobenius norm of X or orthogonality of V)"),
}


def rule_description(rule: str) -> str:
    """One-line description of a rule ID (raises ``KeyError`` if unknown)."""
    return RULES[rule][1]


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a rule violation (or warning) at a specific sweep step.

    ``step`` is 1-based like the paper's figures; ``None`` means the
    finding concerns the sweep as a whole (e.g. a missing pair).
    ``details`` holds rule-specific data as sorted ``(key, value)``
    pairs so the object stays hashable and deterministic.
    """

    rule: str
    message: str
    step: int | None = None
    details: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.rule not in RULES:
            raise ValueError(f"unknown rule ID {self.rule!r}")

    @property
    def severity(self) -> str:
        return RULES[self.rule][0]

    @property
    def is_error(self) -> bool:
        return self.severity == "error"

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "step": self.step,
            "message": self.message,
            "details": dict(self.details),
        }

    def render(self) -> str:
        where = f" step {self.step}" if self.step is not None else ""
        return f"{self.rule}[{self.severity}]{where}: {self.message}"


@dataclass
class Report:
    """Outcome of linting one target (one schedule or one ordering).

    ``checks`` lists the analyses that actually ran (capacity checks,
    for instance, need a topology), so "no findings" can be told apart
    from "not checked".
    """

    target: str
    diagnostics: list[Diagnostic] = field(default_factory=list)
    checks: list[str] = field(default_factory=list)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.is_error]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if not d.is_error]

    @property
    def ok(self) -> bool:
        """True iff no error-severity diagnostic was found."""
        return not self.errors

    def rules_fired(self) -> set[str]:
        return {d.rule for d in self.diagnostics}

    def extend(self, diagnostics: list[Diagnostic], check: str) -> None:
        """Record one analysis pass and its findings."""
        self.checks.append(check)
        self.diagnostics.extend(diagnostics)

    def to_dict(self) -> dict[str, object]:
        return {
            "target": self.target,
            "ok": self.ok,
            "checks": list(self.checks),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def render(self) -> str:
        """Human-readable multi-line summary."""
        status = "ok" if self.ok else f"FAIL ({len(self.errors)} error(s))"
        lines = [f"{self.target}: {status}  [checks: {', '.join(self.checks)}]"]
        lines += [f"  {d.render()}" for d in self.diagnostics]
        return "\n".join(lines)
