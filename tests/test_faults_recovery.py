"""End-to-end recovery tests: faulted runs must reproduce the
fault-free singular values exactly, or fail explicitly — never return
silently wrong output."""

import warnings

import numpy as np
import pytest

from repro import ConvergenceWarning, FaultPlan, parallel_svd, svd
from repro.faults.campaign import CampaignCase, single_fault_plan
from repro.util.bits import leaf_of_slot


@pytest.fixture(scope="module")
def matrix():
    return np.random.default_rng(7).standard_normal((24, 16))


@pytest.fixture(scope="module")
def baseline(matrix):
    return parallel_svd(matrix, topology="perfect", ordering="fat_tree")


def _relerr(r, r0):
    return float(np.max(np.abs(r.sigma - r0.sigma))) / float(r0.sigma[0])


def _faulted(matrix, plan, **kwargs):
    kwargs.setdefault("topology", "perfect")
    kwargs.setdefault("ordering", "fat_tree")
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", ConvergenceWarning)
        return parallel_svd(matrix, fault_plan=plan, **kwargs)


class TestMessageFaultRecovery:
    @pytest.mark.parametrize("kind", ["drop", "duplicate", "delay", "corrupt"])
    def test_transport_recovers_exactly(self, matrix, baseline, kind):
        plan = single_fault_plan(CampaignCase("fat_tree", kind, 16))
        r, rep = _faulted(matrix, plan)
        assert r.converged
        assert _relerr(r, baseline[0]) <= 1e-8
        assert any(e.action == "injected" for e in r.fault_events)
        assert rep.recovery_time > 0

    def test_recovery_cost_lands_in_total_time(self, matrix, baseline):
        plan = single_fault_plan(CampaignCase("fat_tree", "drop", 16))
        _, rep = _faulted(matrix, plan)
        assert rep.total_time > baseline[1].total_time

    def test_retries_visible_in_step_records(self, matrix):
        plan = single_fault_plan(CampaignCase("fat_tree", "drop", 16))
        r, rep = _faulted(matrix, plan)
        assert rep.total_retries >= 1
        stepped = [ev for s in rep.sweep_stats for ev in s.fault_events]
        assert any(e.kind == "drop" for e in stepped)


class TestCrashRecovery:
    def test_crash_remaps_and_recovers_exactly(self, matrix, baseline):
        plan = FaultPlan().crash(leaf=3, sweep=0, step=2)
        r, rep = _faulted(matrix, plan)
        assert r.converged
        assert _relerr(r, baseline[0]) <= 1e-8
        actions = {e.action for e in r.fault_events}
        assert "rollback" in actions and "remap" in actions
        assert rep.rollbacks >= 1

    def test_buddy_pair_double_crash_fails_explicitly(self, matrix):
        plan = (FaultPlan()
                .crash(leaf=2, sweep=0, step=1)
                .crash(leaf=3, sweep=1, step=1))
        r, rep = _faulted(matrix, plan)
        assert not r.converged
        assert any(e.action == "unrecoverable" for e in r.fault_events)

    def test_degraded_validation_reported(self, matrix):
        plan = FaultPlan().crash(leaf=1, sweep=0, step=1)
        r, _ = _faulted(matrix, plan)
        remaps = [e for e in r.fault_events
                  if e.action == "remap" and e.kind == "recovery"]
        assert remaps and "degraded" in remaps[0].detail


class TestSilentCorruption:
    @pytest.mark.parametrize("mode", ["nan", "inf", "scale", "zero"])
    def test_detected_and_rolled_back(self, matrix, baseline, mode):
        plan = FaultPlan()
        case_plan = single_fault_plan(
            CampaignCase("fat_tree", "corrupt_silent", 16))
        f = case_plan.faults[0]
        plan = plan.corrupt(sweep=f.sweep, step=f.step, src=f.src,
                            dst=f.dst, mode=mode, silent=True)
        r, rep = _faulted(matrix, plan)
        assert r.converged
        assert _relerr(r, baseline[0]) <= 1e-8
        assert rep.rollbacks >= 1


class TestStallAndOutage:
    def test_stall_charged_but_harmless(self, matrix, baseline):
        plan = FaultPlan().stall(leaf=0, sweep=0, step=1, duration=300.0)
        r, rep = _faulted(matrix, plan)
        assert r.converged
        assert _relerr(r, baseline[0]) <= 1e-8
        stalls = [e for e in r.fault_events if e.kind == "stall"]
        assert stalls and stalls[0].time_charged == 300.0

    def test_outage_waited_out(self, matrix, baseline):
        plan = single_fault_plan(CampaignCase("fat_tree", "outage", 16))
        r, rep = _faulted(matrix, plan)
        assert r.converged
        assert _relerr(r, baseline[0]) <= 1e-8
        assert any(e.action == "outage-wait" for e in r.fault_events)


class TestExplicitFailure:
    def test_exhausted_retries_never_silently_wrong(self, matrix):
        plan = single_fault_plan(CampaignCase("fat_tree", "drop", 16))
        f = plan.faults[0]
        hopeless = FaultPlan(max_retries=2).drop(
            sweep=f.sweep, step=f.step, src=f.src, dst=f.dst, fires=50)
        with pytest.warns(ConvergenceWarning):
            r, rep = parallel_svd(matrix, topology="perfect",
                                  ordering="fat_tree", fault_plan=hopeless)
        assert not r.converged
        assert any(e.action == "unrecoverable" for e in r.fault_events)

    def test_failed_result_summary_says_so(self, matrix):
        plan = FaultPlan(max_retries=1).drop(
            sweep=None, step=None, src=None, dst=None, fires=10 ** 6)
        r, _ = _faulted(matrix, plan)
        assert not r.converged
        assert "NOT converged" in r.summary()


class TestBlockAndKernelPaths:
    def test_gram_block_path_recovers(self, matrix):
        r0, _ = parallel_svd(matrix, topology="perfect", ordering="ring_new",
                             block_size=2, kernel="gram")
        plan = single_fault_plan(
            CampaignCase("ring_new", "corrupt_silent", 16, "gram", 2))
        r, rep = _faulted(matrix, plan, ordering="ring_new",
                          block_size=2, kernel="gram")
        assert r.converged
        assert _relerr(r, r0) <= 1e-8

    def test_batched_kernel_path_recovers(self, matrix, baseline):
        r0, _ = parallel_svd(matrix, topology="perfect", ordering="fat_tree",
                             kernel="batched")
        plan = single_fault_plan(CampaignCase("fat_tree", "crash", 16,
                                              "batched"))
        r, _ = _faulted(matrix, plan, kernel="batched")
        assert r.converged
        assert _relerr(r, r0) <= 1e-8


class TestSvdEntryPoint:
    def test_svd_fault_plan_delegates_to_machine(self, matrix):
        plan = FaultPlan().crash(leaf=2, sweep=0, step=1)
        r = svd(matrix, ordering="fat_tree", fault_plan=plan)
        clean = svd(matrix, ordering="fat_tree")
        assert r.converged
        assert _relerr(r, clean) <= 1e-8
        assert r.fault_events

    def test_fault_free_plan_is_bit_identical(self, matrix, baseline):
        # an installed injector with an empty plan must not perturb the
        # simulation results (the recovery scaffolding only prices real
        # faults)
        r, rep = _faulted(matrix, FaultPlan())
        assert np.array_equal(r.sigma, baseline[0].sigma)
        assert r.fault_events == []
