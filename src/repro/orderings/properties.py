"""Machine-checkable properties of parallel Jacobi orderings.

The paper states its results as prose invariants ("every column meets
every other exactly once per sweep", "the original order of the indices
is maintained after the completion of each sweep", "the messages travel
between processors in only one direction", Definition 1's equivalence
under relabelling).  This module turns each of those statements into a
predicate used by both the test-suite and the experiment harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from collections.abc import Sequence

from .base import Ordering
from .schedule import Schedule

__all__ = [
    "ValidityReport",
    "check_all_pairs_once",
    "check_local_pairs",
    "check_one_directional",
    "sweep_message_counts",
    "relabelling_equivalent",
    "find_relabelling",
    "meeting_gap_profile",
]


@dataclass(frozen=True)
class ValidityReport:
    """Result of the all-pairs-once check."""

    is_valid: bool
    n_pairs_expected: int
    n_pairs_seen: int
    duplicates: tuple[frozenset[int], ...]
    missing: tuple[frozenset[int], ...]

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.is_valid


def check_all_pairs_once(schedule: Schedule, layout: Sequence[int] | None = None) -> ValidityReport:
    """Verify the defining Jacobi-sweep property: each unordered index
    pair is rotated exactly once during the sweep."""
    n = schedule.n
    seen: dict[frozenset[int], int] = {}
    for pairs in schedule.index_pairs(layout):
        for a, b in pairs:
            key = frozenset((a, b))
            seen[key] = seen.get(key, 0) + 1
    universe = {frozenset(c) for c in combinations(range(1, n + 1), 2)}
    if layout is not None:
        universe = {frozenset(c) for c in combinations(sorted(set(layout)), 2)}
    duplicates = tuple(sorted((k for k, v in seen.items() if v > 1), key=sorted))
    missing = tuple(sorted((k for k in universe if k not in seen), key=sorted))
    extras = set(seen) - universe
    is_valid = not duplicates and not missing and not extras
    return ValidityReport(
        is_valid=is_valid,
        n_pairs_expected=len(universe),
        n_pairs_seen=sum(seen.values()),
        duplicates=duplicates,
        missing=missing,
    )


def check_local_pairs(schedule: Schedule) -> bool:
    """True iff every rotation pairs two slots of the same leaf.

    This is the property the paper's tree orderings are designed for:
    all arithmetic is local; only the column moves communicate.
    """
    return all(not step.remote_pairs for step in schedule.steps)


def check_one_directional(schedule: Schedule, ring_size: int | None = None) -> bool:
    """True iff every inter-leaf move advances exactly one ring position
    and *all* moves of the sweep share the same direction.

    This is the headline feature of the paper's new ring ordering (Section
    4): messages travel between processors in only one direction
    throughout the computation.  Which of the two ring orientations is
    used is a naming convention, so either is accepted — as long as it is
    consistent across the whole sweep (and matches the direction the
    schedule itself declares in ``notes["direction"]``, if any).

    Thin adapter: the per-move analysis lives in
    :func:`repro.verify.direction.ring_direction_violations`, which
    reports *which* moves break the invariant; this predicate only asks
    whether any do.  The import is local because :mod:`repro.verify`
    depends on this package.
    """
    from ..verify.direction import ring_direction_violations

    return not ring_direction_violations(schedule, ring_size=ring_size)


def sweep_message_counts(schedule: Schedule) -> dict[int, int]:
    """Messages sent per step (step number -> count of inter-leaf moves)."""
    counts: dict[int, int] = {}
    for k, step in enumerate(schedule.steps, start=1):
        counts[k] = sum(1 for m in step.moves if not m.is_local)
    return counts


def relabelling_equivalent(
    schedule_a: Schedule,
    schedule_b: Schedule,
    relabelling: dict[int, int],
) -> bool:
    """Check Definition 1 of the paper: ``schedule_a`` relabelled by the
    given index mapping generates the same pair sets, step for step, as
    ``schedule_b``.
    """
    if schedule_a.n != schedule_b.n or schedule_a.n_steps != schedule_b.n_steps:
        return False
    pa = schedule_a.index_pairs()
    pb = schedule_b.index_pairs()
    for step_a, step_b in zip(pa, pb):
        relabelled = {frozenset((relabelling[a], relabelling[b])) for a, b in step_a}
        target = {frozenset(p) for p in step_b}
        if relabelled != target:
            return False
    return True


def find_relabelling(schedule_a: Schedule, schedule_b: Schedule) -> dict[int, int] | None:
    """Search for a relabelling proving equivalence (small ``n`` only).

    Backtracking over index assignments constrained by the per-step pair
    structure; feasible up to n ~ 16, which covers the figures.
    """
    if schedule_a.n != schedule_b.n or schedule_a.n_steps != schedule_b.n_steps:
        return None
    n = schedule_a.n
    pa = schedule_a.index_pairs()
    pb = schedule_b.index_pairs()

    # partner sequence of each index: who it meets at each step
    def partner_table(pair_lists: list[list[tuple[int, int]]]) -> dict[int, list[int]]:
        table: dict[int, list[int]] = {i: [] for i in range(1, n + 1)}
        for pairs in pair_lists:
            for a, b in pairs:
                table[a].append(b)
                table[b].append(a)
        return table

    ta, tb = partner_table(pa), partner_table(pb)
    mapping: dict[int, int] = {}
    used: set[int] = set()

    def consistent(x: int, y: int) -> bool:
        # x's partner at step s must map to y's partner at step s when known
        for s in range(len(pa)):
            px, py = ta[x][s], tb[y][s]
            if px in mapping and mapping[px] != py:
                return False
            mx = {v: k for k, v in mapping.items()}
            if py in mx and mx[py] != px:
                return False
        return True

    order = sorted(range(1, n + 1))

    def bt(k: int) -> bool:
        if k == len(order):
            return True
        x = order[k]
        for y in range(1, n + 1):
            if y in used or not consistent(x, y):
                continue
            mapping[x] = y
            used.add(y)
            if bt(k + 1):
                return True
            del mapping[x]
            used.discard(y)
        return False

    if bt(0) and relabelling_equivalent(schedule_a, schedule_b, mapping):
        return dict(mapping)
    return None


def meeting_gap_profile(ordering: Ordering, n_sweeps: int = 3) -> dict[str, float]:
    """Distribution of the gap (in steps) between consecutive rotations of
    the same index pair across sweeps.

    The paper's first criticism of the Lee-Luk-Boley ordering is that with
    alternating forward/backward sweeps "the number of rotations between
    any fixed pair (i, j) is variable rather than constant", which can
    slow convergence.  A sweep-invariant ordering has every gap equal to
    the sweep length; forward/backward alternation spreads the gaps out.
    """
    last_seen: dict[frozenset[int], int] = {}
    gaps: list[int] = []
    t = 0
    layout = list(range(1, ordering.n + 1))
    for s in range(n_sweeps):
        sched = ordering.sweep(s)
        for _, pairs, state in sched.trace(layout):
            if pairs:
                t += 1
            for a, b in pairs:
                key = frozenset((a, b))
                if key in last_seen:
                    gaps.append(t - last_seen[key])
                last_seen[key] = t
            layout = state
    if not gaps:
        return {"min": 0.0, "max": 0.0, "mean": 0.0, "spread": 0.0}
    mean = sum(gaps) / len(gaps)
    return {
        "min": float(min(gaps)),
        "max": float(max(gaps)),
        "mean": mean,
        "spread": float(max(gaps) - min(gaps)),
    }
