"""Argument validation helpers with consistent error messages."""

from __future__ import annotations

import numpy as np

from .bits import is_power_of_two

__all__ = ["as_float_matrix", "as_float_stack", "require", "require_even",
           "require_finite", "require_power_of_two", "require_range"]


def require(cond: bool, message: str) -> None:
    """Raise ``ValueError`` with ``message`` unless ``cond`` holds."""
    if not cond:
        raise ValueError(message)


def require_even(n: int, what: str = "n") -> None:
    """Require an even integer >= 2."""
    require(n >= 2 and n % 2 == 0, f"{what} must be an even integer >= 2, got {n!r}")


def require_power_of_two(n: int, what: str = "n", minimum: int = 1) -> None:
    """Require a power of two no smaller than ``minimum``."""
    require(
        is_power_of_two(n) and n >= minimum,
        f"{what} must be a power of two >= {minimum}, got {n!r}",
    )


def require_range(x: int, lo: int, hi: int, what: str = "value") -> None:
    """Require ``lo <= x <= hi``."""
    require(lo <= x <= hi, f"{what} must be in [{lo}, {hi}], got {x!r}")


def _as_float_array(a: object, ndim: int, what: str) -> np.ndarray:
    """Coerce ``a`` to a C-contiguous float64 array of rank ``ndim``."""
    arr = np.asarray(a)
    shape_word = "matrix" if ndim == 2 else "stack of matrices"
    require(arr.ndim == ndim,
            f"{what} must be a {ndim}-D {shape_word}, got ndim={arr.ndim}")
    if np.iscomplexobj(arr):
        # ascontiguousarray would silently discard the imaginary part
        raise ValueError(
            f"{what} must be real-valued, got complex dtype {arr.dtype}")
    if arr.dtype != np.float64 or not arr.flags.c_contiguous:
        try:
            arr = np.ascontiguousarray(arr, dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"{what} must be real-valued (convertible to float64), "
                f"got dtype {arr.dtype}"
            ) from exc
    return arr


def as_float_matrix(a: object, what: str = "a") -> np.ndarray:
    """Normalise a matrix argument for the SVD entry points.

    Returns a C-contiguous float64 2-D array (copying only when the
    input is not already in that form) with every entry finite.  The
    single shared normalisation gate of ``svd``/``parallel_svd``/
    ``svd_batch``: F-contiguous views, integer/float32 dtypes and
    array-likes all land on the exact layout the kernels are specified
    on, so the same input always produces the same bits regardless of
    how the caller stored it.
    """
    arr = _as_float_array(a, 2, what)
    require_finite(arr, what)
    return arr


def as_float_stack(a: object, what: str = "matrices") -> np.ndarray:
    """Normalise a 3-D stack of same-shape matrices (no finiteness check).

    The batch entry point checks finiteness itself so the error can name
    the offending batch item; see :func:`repro.core.api.svd_batch`.
    """
    return _as_float_array(a, 3, what)


def require_finite(a: np.ndarray, what: str = "a") -> None:
    """Require every entry of ``a`` to be finite (no NaN/Inf).

    The error names the first offending coordinate, so a caller feeding
    a matrix with one bad entry learns *where* it is instead of getting
    garbage singular values back.
    """
    finite = np.isfinite(a)
    if finite.all():
        return
    idx = tuple(int(i) for i in np.argwhere(~finite)[0])
    raise ValueError(
        f"{what} contains non-finite value {a[idx]!r} at index {idx}; "
        "the Jacobi iteration requires finite input"
    )
