"""Tests of the serial one-sided Jacobi SVD driver."""

import numpy as np
import pytest

from repro.orderings import ordering_names
from repro.svd import JacobiOptions, accuracy_report, jacobi_svd
from repro.svd.convergence import off_norm, quadratic_rate_ok

from tests.helpers import make_graded

ALL_ORDERINGS = ["round_robin", "odd_even", "ring_new", "ring_modified",
                 "fat_tree", "llb", "hybrid"]


def kwargs_for(name):
    return {"n_groups": 4} if name == "hybrid" else {}


class TestBasicCorrectness:
    @pytest.mark.parametrize("name", ALL_ORDERINGS)
    def test_matches_lapack(self, rng, name):
        A = rng.standard_normal((24, 16))
        r = jacobi_svd(A, ordering=name, **kwargs_for(name))
        assert r.converged
        rep = accuracy_report(A, r)
        assert rep["sigma_err"] < 1e-12
        assert rep["recon_err"] < 1e-12
        # U's orthogonality floor is the termination threshold times a
        # modest accumulation factor, not machine epsilon
        assert rep["u_ortho_err"] < 5e-11
        assert rep["v_ortho_err"] < 5e-11

    @pytest.mark.parametrize("name", ALL_ORDERINGS)
    def test_sigma_nonincreasing(self, rng, name):
        A = rng.standard_normal((20, 16))
        r = jacobi_svd(A, ordering=name, **kwargs_for(name))
        assert np.all(np.diff(r.sigma) <= 1e-12)

    def test_square_matrix(self, rng):
        A = rng.standard_normal((16, 16))
        r = jacobi_svd(A)
        assert r.converged
        assert accuracy_report(A, r)["sigma_err"] < 1e-12

    def test_tall_thin(self, rng):
        A = rng.standard_normal((200, 8))
        r = jacobi_svd(A)
        assert accuracy_report(A, r)["sigma_err"] < 1e-12

    def test_rejects_wide_without_flag(self, rng):
        with pytest.raises(ValueError):
            jacobi_svd(rng.standard_normal((4, 8)))

    def test_rejects_vector(self):
        with pytest.raises(ValueError):
            jacobi_svd(np.ones(5))


class TestRankDeficiency:
    def test_exactly_rank_deficient(self, rng):
        A = rng.standard_normal((20, 8))
        A[:, 5] = 2.0 * A[:, 0]
        A[:, 6] = A[:, 1] - A[:, 2]
        A[:, 7] = 0.0
        r = jacobi_svd(A)
        assert r.rank == 5
        assert np.all(r.sigma[5:] < 1e-10)
        assert r.reconstruction_error(A) < 1e-12

    def test_zero_matrix(self):
        A = np.zeros((8, 4))
        r = jacobi_svd(A)
        assert r.rank == 0
        assert np.all(r.sigma == 0.0)
        assert r.converged

    def test_rank_one(self, rng):
        u = rng.standard_normal(12)
        v = rng.standard_normal(4)
        A = np.outer(u, v)
        r = jacobi_svd(A)
        assert r.rank == 1
        assert r.sigma[0] == pytest.approx(np.linalg.norm(u) * np.linalg.norm(v))

    def test_u_columns_orthonormal_up_to_rank(self, rng):
        A = rng.standard_normal((20, 8))
        A[:, 7] = A[:, 0]
        r = jacobi_svd(A)
        ur = r.u[:, : r.rank]
        assert np.allclose(ur.T @ ur, np.eye(r.rank), atol=1e-12)


class TestSortedEmergence:
    @pytest.mark.parametrize("name", ["fat_tree", "round_robin"])
    def test_emerges_descending(self, rng, name):
        A = rng.standard_normal((24, 16))
        r = jacobi_svd(A, ordering=name)
        assert r.emerged_sorted == "desc"
        assert np.allclose(r.sigma_by_slot, r.sigma)

    def test_ring_sorted_after_even_sweeps(self, rng):
        # the paper: nonincreasing order after an even number of sweeps
        A = rng.standard_normal((24, 16))
        r = jacobi_svd(A, ordering="ring_new")
        if r.sweeps % 2 == 0:
            assert r.emerged_sorted == "desc"

    def test_sort_none_leaves_values_unsorted_generally(self, rng):
        A = rng.standard_normal((24, 16))
        r = jacobi_svd(A, ordering="fat_tree", options=JacobiOptions(sort=None))
        # canonical sigma is still sorted even if slots are not
        assert np.all(np.diff(r.sigma) <= 1e-12)

    def test_asc_option(self, rng):
        A = rng.standard_normal((24, 16))
        r = jacobi_svd(A, ordering="fat_tree", options=JacobiOptions(sort="asc"))
        assert r.emerged_sorted == "asc"


class TestConvergenceBehaviour:
    def test_off_norm_monotone(self, rng):
        A = rng.standard_normal((24, 16))
        r = jacobi_svd(A, ordering="fat_tree")
        offs = [h.off_norm for h in r.history]
        assert all(b <= a + 1e-9 for a, b in zip(offs, offs[1:]))

    def test_quadratic_on_graded_spectrum(self, rng):
        A = make_graded(32, 16, rng, lo=1e-3)
        r = jacobi_svd(A, ordering="fat_tree")
        assert quadratic_rate_ok([h.off_norm for h in r.history])

    def test_max_sweeps_respected(self, rng):
        A = rng.standard_normal((24, 16))
        r = jacobi_svd(A, options=JacobiOptions(max_sweeps=2))
        assert r.sweeps <= 2
        assert not r.converged

    def test_identity_converges_immediately(self):
        r = jacobi_svd(np.eye(8))
        assert r.sweeps == 1
        assert r.rotations == 0

    def test_loose_tolerance_converges_faster(self, rng):
        A = rng.standard_normal((24, 16))
        tight = jacobi_svd(A, options=JacobiOptions(tol=1e-14))
        loose = jacobi_svd(A, options=JacobiOptions(tol=1e-4))
        assert loose.sweeps <= tight.sweeps

    def test_history_records_every_sweep(self, rng):
        A = rng.standard_normal((24, 16))
        r = jacobi_svd(A)
        assert len(r.history) == r.sweeps
        assert [h.sweep for h in r.history] == list(range(1, r.sweeps + 1))


class TestOrderingObjectInput:
    def test_accepts_prebuilt_ordering(self, rng):
        from repro.orderings import FatTreeOrdering

        A = rng.standard_normal((20, 16))
        r = jacobi_svd(A, ordering=FatTreeOrdering(16))
        assert r.converged

    def test_rejects_size_mismatch(self, rng):
        from repro.orderings import FatTreeOrdering

        with pytest.raises(ValueError):
            jacobi_svd(rng.standard_normal((20, 16)), ordering=FatTreeOrdering(8))

    def test_unknown_name_rejected(self, rng):
        with pytest.raises(ValueError):
            jacobi_svd(rng.standard_normal((8, 4)), ordering="mystery")

    def test_compute_uv_false_skips_vectors(self, rng):
        A = rng.standard_normal((20, 16))
        r = jacobi_svd(A, compute_uv=False)
        assert r.u.shape == (20, 0)
        ref = np.linalg.svd(A, compute_uv=False)
        assert np.allclose(r.sigma, ref, atol=1e-12 * ref[0])
