"""Compiled schedule plans: one-time lowering of a :class:`Schedule`.

Every executor of a schedule — the serial drivers, the tree-machine
simulator, the static verifier, the fault campaign — used to re-derive
the same per-step index arrays (``np.fromiter`` over ``step.pairs`` /
``step.moves``) on every sweep of every run.  A
:class:`CompiledSchedule` performs that lowering exactly once: each step
becomes a :class:`CompiledStep` of contiguous ``intp`` arrays (pair
columns ``a``/``b``, move ``src``/``dst``, per-move tree levels and hop
counts, the leaf that hosts each pair), the sweep-level slot trajectory
is precomputed, and healthy-mode routing outcomes are memoised per
topology.

Plans are cached process-wide behind an LRU keyed by the schedule's
*structural fingerprint* (its pair/move tuples), so two runs that build
the same ordering at the same size — the common case: every
``ParallelJacobiSVD.compute`` call constructs a fresh
:class:`~repro.orderings.base.Ordering` — share one compiled plan.  The
cache is observable (:func:`plan_cache_stats`) and resettable
(:func:`clear_plan_cache`); hits and misses are counted so the
"lowering happens once" property is testable rather than folklore.

Plans are immutable and therefore safe to share across threads: the
step executor backends (:mod:`repro.parallel.executor`) read the same
plan from every worker.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from threading import Lock

import numpy as np

from ..util.bits import comm_level, leaf_of_slot
from .schedule import Move, Schedule

__all__ = [
    "CompiledSchedule",
    "CompiledStep",
    "FastPathPlan",
    "PLAN_MEMO_ATTR",
    "PlanCacheStats",
    "clear_plan_cache",
    "compile_schedule",
    "lower_schedule",
    "plan_cache_stats",
    "plans_structurally_equal",
    "structural_fingerprint",
]

#: compiled plans kept by the process-wide LRU (a plan is a few KB; the
#: registry spans a handful of orderings x sizes in any realistic run)
_CACHE_MAXSIZE = 128

_EMPTY = np.empty(0, dtype=np.intp)

#: sentinel key of the fast-path memo inside the plan's ``_routes`` dict
#: (topology keys are tuples, so a plain string can never collide)
_FASTPATH_KEY = "__fastpath__"


@dataclass(frozen=True)
class CompiledStep:
    """One schedule step lowered to contiguous index arrays.

    ``pairs`` is the ``(k, 2)`` slot-pair array in the schedule's
    storage convention (``a = pairs[:, 0]`` is the *left* slot of each
    pair); ``src``/``dst`` are the move phase as a partial permutation.
    Empty phases are zero-length arrays, never ``None``, so consumers
    index unconditionally.  ``moves`` keeps the original
    :class:`~repro.orderings.schedule.Move` tuple for consumers that
    need object identity (the fault transport matches messages against
    it).
    """

    #: (k, 2) slot pairs rotated in parallel (k may be 0)
    pairs: np.ndarray
    #: left / right columns of ``pairs`` (views, kept for hot loops)
    a: np.ndarray
    b: np.ndarray
    #: move phase: partial permutation of slot contents
    src: np.ndarray
    dst: np.ndarray
    #: original move objects (fault transport, corruption operators)
    moves: tuple[Move, ...]
    #: physical leaf hosting each pair's left slot (identity host map)
    pair_leaves: np.ndarray
    #: tree level of each move (0 = intra-leaf)
    move_levels: np.ndarray
    #: ``(src_leaf, dst_leaf)`` per move (identity host map)
    move_leaves: np.ndarray
    #: messages crossing leaves under the identity host map
    n_remote: int
    #: total channel hops of the step's messages (2 x level each)
    hop_count: int
    #: busiest leaf's rotation count under the identity host map
    max_pairs_per_leaf: int

    @property
    def n_pairs(self) -> int:
        return len(self.a)

    @property
    def has_moves(self) -> bool:
        return len(self.src) > 0


@dataclass(frozen=True)
class FastPathPlan:
    """Per-sweep tensors of the simulator's vectorised fast path.

    The fault-free simulator never moves columns during a sweep: it
    addresses *contents* directly (content id = slot at sweep start) and
    applies the whole sweep permutation once at the end.  Everything it
    needs is derived here, once per plan:

    ``content_pairs[i]`` is the ``(k, 2)`` array of content ids met at
    step ``i`` — ``trajectory[i-1][steps[i].pairs]``, the replay of the
    move tensors that the event-driven path performs one fancy
    assignment per step.  ``final_layout`` / ``final_list`` are the
    sweep permutation (array and memoised plain-int forms; the latter is
    what :func:`~repro.orderings.schedule.permutation_of_sweep` hands
    out, so repeat calls no longer re-run ``tolist``).
    """

    #: per-step (k, 2) content-id pairs (content = slot at sweep start)
    content_pairs: tuple[np.ndarray, ...]
    #: sweep permutation: content id ending up at each slot
    final_layout: np.ndarray
    #: the same permutation as plain ints (memoised ``tolist``)
    final_list: tuple[int, ...]
    #: largest pair count of any step (fast-path scratch sizing)
    max_pairs: int


def _derive_fastpath(plan: "CompiledSchedule") -> FastPathPlan:
    """Replay the sweep trajectory into per-step content-pair tensors."""
    prev = np.arange(plan.n, dtype=np.intp)
    content_pairs: list[np.ndarray] = []
    max_pairs = 0
    for i, cs in enumerate(plan.steps):
        pc = np.ascontiguousarray(prev[cs.pairs]) if cs.n_pairs else cs.pairs
        pc.setflags(write=False)
        content_pairs.append(pc)
        max_pairs = max(max_pairs, cs.n_pairs)
        prev = plan.trajectory[i]
    final = plan.final_layout()
    return FastPathPlan(
        content_pairs=tuple(content_pairs),
        final_layout=final,
        final_list=tuple(int(x) for x in final),
        max_pairs=max_pairs,
    )


@dataclass(frozen=True)
class CompiledSchedule:
    """A whole sweep lowered once; shared, immutable, thread-safe.

    ``trajectory[k]`` is the slot layout after step ``k + 1`` (layout
    entries are the *initial* slot whose content now sits there), i.e.
    the slot -> content trajectory of the sweep; ``trajectory[-1]`` is
    the sweep permutation the restoration argument of the paper is
    about.  ``route_phase`` memoises healthy-mode routing per topology
    so the simulator never re-routes an unchanged move phase.
    """

    n: int
    name: str
    steps: tuple[CompiledStep, ...]
    #: (n_steps, n) slot-content trajectory across the sweep
    trajectory: np.ndarray
    #: healthy-mode routing memo: topology cache key -> per-step phases
    _routes: dict = field(default_factory=dict, repr=False, compare=False)
    _routes_lock: Lock = field(default_factory=Lock, repr=False, compare=False)

    @property
    def n_steps(self) -> int:
        return len(self.steps)

    @property
    def total_messages(self) -> int:
        """Inter-leaf transfers per sweep (matches ``Schedule.total_messages``)."""
        return sum(s.n_remote for s in self.steps)

    def final_layout(self) -> np.ndarray:
        """Slot permutation of the whole sweep (``trajectory[-1]``)."""
        if len(self.trajectory):
            return self.trajectory[-1]
        return np.arange(self.n, dtype=np.intp)

    def fastpath(self) -> FastPathPlan:
        """The sweep's :class:`FastPathPlan`, derived once and memoised.

        Shares the routing memo's lock/dict (the plan is frozen); the
        derivation is pure, so a rare duplicate derivation under
        contention is merely wasted work, never inconsistency.
        """
        with self._routes_lock:
            fp = self._routes.get(_FASTPATH_KEY)
        if fp is None:
            fp = _derive_fastpath(self)
            with self._routes_lock:
                fp = self._routes.setdefault(_FASTPATH_KEY, fp)
        return fp

    def route_phase(self, topology, step_index: int):
        """Healthy-mode :class:`~repro.machine.routing.MessagePhase` of a
        step, memoised per topology.

        Valid only for the identity host map — a degraded machine must
        re-route through :func:`~repro.machine.routing.route_phase`
        itself.  The returned phase is shared; treat it as read-only.
        """
        key = _topology_key(topology)
        with self._routes_lock:
            phases = self._routes.get(key)
            if phases is None:
                phases = self._routes[key] = [None] * len(self.steps)
            phase = phases[step_index]
        if phase is None:
            from ..machine.routing import route_moves

            step = self.steps[step_index]
            phase = route_moves(topology, step.move_leaves[:, 0],
                                step.move_leaves[:, 1])
            with self._routes_lock:
                phases[step_index] = phase
        return phase


def _topology_key(topology) -> tuple:
    """Structural identity of a topology (class + leaves + knobs)."""
    key: tuple = (type(topology).__qualname__, topology.n_leaves)
    skinny = getattr(topology, "skinny_above", None)
    if skinny is not None:
        key += (skinny,)
    return key


@dataclass
class PlanCacheStats:
    """Counters of the process-wide plan cache (see :func:`plan_cache_stats`).

    ``misses`` counts actual lowerings; ``hits`` counts reuses through
    the structural LRU; ``instance_hits`` counts the fast path where the
    same :class:`Schedule` object asked again (per-run repeat sweeps).
    """

    hits: int = 0
    misses: int = 0
    instance_hits: int = 0
    size: int = 0

    @property
    def compilations(self) -> int:
        return self.misses


_cache: OrderedDict[tuple, CompiledSchedule] = OrderedDict()
_stats = PlanCacheStats()
_lock = Lock()

# attribute used to memoise per-Schedule-instance state without touching
# the Schedule class itself
_ATTR = "_compiled_plan"

#: public name of the instance-memo attribute — the verifier's
#: corruption operators plant stale plans under it to prove the
#: plan-cache check (PLAN003) actually detects them
PLAN_MEMO_ATTR = _ATTR


def _fingerprint(schedule: Schedule) -> tuple:
    """Structural cache key: sizes plus every pair and move of the sweep.

    Plain int tuples — equality-safe (no hashes that could collide into
    a wrong plan) and cheap next to the lowering itself.
    """
    return (
        schedule.n,
        tuple(
            (step.pairs, tuple((m.src, m.dst) for m in step.moves))
            for step in schedule.steps
        ),
    )


def _lower(schedule: Schedule) -> CompiledSchedule:
    """The actual lowering: every per-step python walk happens here, once."""
    steps: list[CompiledStep] = []
    layout = np.arange(schedule.n, dtype=np.intp)
    trajectory = np.empty((len(schedule.steps), schedule.n), dtype=np.intp)
    for i, step in enumerate(schedule.steps):
        if step.pairs:
            pairs = np.asarray(step.pairs, dtype=np.intp).reshape(-1, 2)
        else:
            pairs = _EMPTY.reshape(0, 2)
        a = np.ascontiguousarray(pairs[:, 0])
        b = np.ascontiguousarray(pairs[:, 1])
        pair_leaves = a >> 1  # leaf_of_slot, vectorised
        if len(pair_leaves):
            busiest = int(np.bincount(pair_leaves).max())
        else:
            busiest = 0
        if step.moves:
            src = np.fromiter((m.src for m in step.moves), dtype=np.intp,
                              count=len(step.moves))
            dst = np.fromiter((m.dst for m in step.moves), dtype=np.intp,
                              count=len(step.moves))
        else:
            src = dst = _EMPTY
        move_levels = np.fromiter(
            (comm_level(leaf_of_slot(int(s)), leaf_of_slot(int(d)))
             for s, d in zip(src, dst)),
            dtype=np.intp, count=len(src))
        move_leaves = np.column_stack((src >> 1, dst >> 1)) if len(src) \
            else _EMPTY.reshape(0, 2)
        steps.append(CompiledStep(
            pairs=pairs, a=a, b=b, src=src, dst=dst, moves=step.moves,
            pair_leaves=pair_leaves, move_levels=move_levels,
            move_leaves=move_leaves,
            n_remote=int(np.count_nonzero(move_levels)),
            hop_count=2 * int(move_levels.sum()),
            max_pairs_per_leaf=busiest,
        ))
        if len(src):
            layout[dst] = layout[src]
        trajectory[i] = layout
    for arr in (trajectory,):
        arr.setflags(write=False)
    return CompiledSchedule(
        n=schedule.n, name=schedule.name, steps=tuple(steps),
        trajectory=trajectory,
    )


def compile_schedule(schedule: Schedule) -> CompiledSchedule:
    """Compiled plan of ``schedule``; lowered once, then cached.

    Fast path: the plan is memoised on the schedule instance, so repeat
    sweeps of one run cost a single attribute read.  Slow path: the
    process-wide LRU keyed by the structural fingerprint, which makes
    *runs* share plans (every ``compute`` call builds a fresh ordering
    and therefore fresh ``Schedule`` objects of identical structure).
    """
    plan = schedule.__dict__.get(_ATTR)
    if plan is not None:
        with _lock:
            _stats.instance_hits += 1
        return plan
    key = _fingerprint(schedule)
    with _lock:
        plan = _cache.get(key)
        if plan is not None:
            _cache.move_to_end(key)
            _stats.hits += 1
            schedule.__dict__[_ATTR] = plan
            return plan
    # lower outside the lock: compilation is pure and idempotent, and a
    # rare duplicate lowering beats serialising every first compile
    plan = _lower(schedule)
    with _lock:
        existing = _cache.get(key)
        if existing is not None:
            _stats.hits += 1
            plan = existing
        else:
            _stats.misses += 1
            _cache[key] = plan
            while len(_cache) > _CACHE_MAXSIZE:
                _cache.popitem(last=False)
        _stats.size = len(_cache)
    schedule.__dict__[_ATTR] = plan
    return plan


def structural_fingerprint(schedule: Schedule) -> tuple:
    """Public view of the plan cache key of ``schedule``.

    The verifier's plan-integrity pass (:mod:`repro.verify.plancheck`)
    uses it to prove that two schedules sharing one cached plan really
    are structurally identical, without reaching into cache internals.
    """
    return _fingerprint(schedule)


def lower_schedule(schedule: Schedule) -> CompiledSchedule:
    """Lower ``schedule`` afresh, bypassing every cache layer.

    The result is never stored: no LRU entry, no instance memo, no
    counter movement.  This is the independent re-elaboration oracle the
    plan-integrity pass compares cached plans against — a stale or
    collided cache entry cannot influence it.
    """
    return _lower(schedule)


def plans_structurally_equal(a: CompiledSchedule, b: CompiledSchedule) -> bool:
    """True iff two compiled plans lower the same schedule structure.

    Compares every per-step index array plus the derived trajectory;
    routing memos and object identity are ignored.
    """
    if a.n != b.n or len(a.steps) != len(b.steps):
        return False
    if not np.array_equal(a.trajectory, b.trajectory):
        return False
    for sa, sb in zip(a.steps, b.steps):
        if not (np.array_equal(sa.pairs, sb.pairs)
                and np.array_equal(sa.src, sb.src)
                and np.array_equal(sa.dst, sb.dst)):
            return False
    return True


def plan_cache_stats() -> PlanCacheStats:
    """Snapshot of the plan-cache counters (copy; safe to keep)."""
    with _lock:
        return PlanCacheStats(
            hits=_stats.hits, misses=_stats.misses,
            instance_hits=_stats.instance_hits, size=len(_cache),
        )


def clear_plan_cache() -> None:
    """Drop every cached plan and zero the counters (test isolation)."""
    with _lock:
        _cache.clear()
        _stats.hits = _stats.misses = _stats.instance_hits = 0
        _stats.size = 0
