"""Public facade: ``svd``, ``parallel_svd``, ``svd_batch`` and the result types."""

from .api import parallel_svd, svd, svd_batch
from .result import BatchResult, SVDResult, SweepRecord

__all__ = ["BatchResult", "SVDResult", "SweepRecord", "parallel_svd", "svd",
           "svd_batch"]
