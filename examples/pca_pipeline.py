"""A realistic downstream pipeline: PCA + least squares on the tree SVD.

The paper motivates the SVD by applications "where sufficiently small
singular values are regarded as zero" (signal subspace methods, rank
determination).  This example builds a noisy low-rank sensor dataset,
identifies the signal subspace with PCA, denoises by rank truncation
and solves a calibration least-squares problem - every step through the
tree-ordered Jacobi SVD public API.

Run:  python examples/pca_pipeline.py
"""

import numpy as np

from repro.apps import lstsq, pca, truncated_svd

rng = np.random.default_rng(8)

# --- synthetic sensor data: 3 latent sources, 24 sensors, 200 samples
n_samples, n_sensors, n_sources = 200, 24, 3
sources = rng.standard_normal((n_samples, n_sources))
mixing = rng.standard_normal((n_sources, n_sensors)) * [[5.0], [2.0], [0.8]]
noise = 0.05 * rng.standard_normal((n_samples, n_sensors))
data = sources @ mixing + noise

# --- signal subspace via PCA (tree-ordered Jacobi SVD underneath)
model = pca(data, k=8)
print("explained variance ratio:", np.round(model.explained_variance_ratio, 4))
kept = int(np.sum(model.explained_variance_ratio > 0.01))
print(f"components above 1% variance: {kept} (true source count: {n_sources})")

# --- denoise by rank truncation (Eckart-Young via truncated_svd)
centred = data - data.mean(axis=0)
approx = truncated_svd(centred, kept)
clean = approx.reconstruct()
signal = (sources - sources.mean(axis=0)) @ mixing
err_raw = np.linalg.norm(centred - signal) / np.linalg.norm(signal)
err_clean = np.linalg.norm(clean - signal) / np.linalg.norm(signal)
print(f"\nrelative error vs true signal: raw {err_raw:.4f} -> denoised {err_clean:.4f}")
print(f"rank-{kept} truncation error (exact, from sigma tail): {approx.error:.4f}")

# --- calibration: recover the mixing row for a new reference channel
reference = sources @ np.array([1.5, -2.0, 0.5]) + 0.02 * rng.standard_normal(n_samples)
fit = lstsq(sources, reference)
print(f"\nleast-squares calibration: rank={fit.rank} "
      f"coefficients={np.round(fit.x, 3)} residual={fit.residual_norm:.3f}")
print("expected coefficients    : [ 1.5 -2.   0.5]")
