"""Tests of the one-sided block Jacobi driver."""

import numpy as np
import pytest

from repro.blockjacobi import BlockJacobiOptions, block_jacobi_svd


class TestCorrectness:
    @pytest.mark.parametrize("b", [1, 2, 4, 8])
    def test_matches_lapack(self, rng, b):
        a = rng.standard_normal((40, 32))
        r = block_jacobi_svd(a, options=BlockJacobiOptions(block_size=b))
        assert r.converged
        ref = np.linalg.svd(a, compute_uv=False)
        assert np.max(np.abs(r.sigma - ref)) < 1e-11 * ref[0]

    @pytest.mark.parametrize("name", ["ring_new", "round_robin", "fat_tree", "odd_even"])
    def test_all_orderings(self, rng, name):
        a = rng.standard_normal((24, 16))
        r = block_jacobi_svd(a, ordering=name,
                             options=BlockJacobiOptions(block_size=2))
        assert r.converged
        ref = np.linalg.svd(a, compute_uv=False)
        assert np.max(np.abs(r.sigma - ref)) < 1e-11 * ref[0]

    def test_uv_reconstruction(self, rng):
        a = rng.standard_normal((24, 16))
        r = block_jacobi_svd(a, options=BlockJacobiOptions(block_size=4))
        assert np.linalg.norm(a - (r.u * r.sigma) @ r.v.T) < 1e-10

    def test_sorted_output(self, rng):
        a = rng.standard_normal((24, 16))
        r = block_jacobi_svd(a, options=BlockJacobiOptions(block_size=4))
        assert r.emerged_sorted == "desc"

    def test_rank_deficient(self, rng):
        a = rng.standard_normal((24, 16))
        a[:, 15] = a[:, 0]
        r = block_jacobi_svd(a, options=BlockJacobiOptions(block_size=4))
        assert r.rank == 15

    def test_larger_blocks_fewer_outer_sweeps(self, rng):
        a = rng.standard_normal((48, 32))
        small = block_jacobi_svd(a, options=BlockJacobiOptions(block_size=1))
        large = block_jacobi_svd(a, options=BlockJacobiOptions(block_size=8))
        assert large.sweeps <= small.sweeps


class TestValidation:
    def test_block_size_must_divide(self, rng):
        with pytest.raises(ValueError):
            block_jacobi_svd(rng.standard_normal((20, 12)),
                             options=BlockJacobiOptions(block_size=5))

    def test_block_count_must_fit_ordering(self, rng):
        # n=16, b=4 -> 4 blocks; fat_tree needs a power of two >= 4: ok.
        # n=24, b=4 -> 6 blocks; fat_tree rejects non powers of two
        with pytest.raises(ValueError):
            block_jacobi_svd(rng.standard_normal((30, 24)), ordering="fat_tree",
                             options=BlockJacobiOptions(block_size=4))

    def test_ring_accepts_any_even_block_count(self, rng):
        a = rng.standard_normal((30, 24))  # 6 blocks of 4
        r = block_jacobi_svd(a, ordering="ring_new",
                             options=BlockJacobiOptions(block_size=4))
        assert r.converged

    def test_positive_block_size(self, rng):
        with pytest.raises(ValueError):
            block_jacobi_svd(rng.standard_normal((8, 8)),
                             options=BlockJacobiOptions(block_size=0))

    # Regression: inner_sweeps=0 used to slip through construction and
    # make every local solve a no-op reporting worst=0.0, so the driver
    # declared convergence after one sweep with a wrong answer.  The
    # options now reject non-positive sweep counts at construction.
    @pytest.mark.parametrize("bad", [0, -1, -7])
    def test_nonpositive_inner_sweeps_rejected(self, bad):
        with pytest.raises(ValueError, match="inner_sweeps must be >= 1"):
            BlockJacobiOptions(inner_sweeps=bad)

    @pytest.mark.parametrize("bad", [0, -1, -7])
    def test_nonpositive_max_sweeps_rejected(self, bad):
        with pytest.raises(ValueError, match="max_sweeps must be >= 1"):
            BlockJacobiOptions(max_sweeps=bad)

    def test_valid_sweep_bounds_accepted(self):
        opts = BlockJacobiOptions(inner_sweeps=1, max_sweeps=1)
        assert opts.inner_sweeps == 1
        assert opts.max_sweeps == 1

    def test_history_and_monotone_off(self, rng):
        a = rng.standard_normal((24, 16))
        r = block_jacobi_svd(a, options=BlockJacobiOptions(block_size=4))
        offs = [h.off_norm for h in r.history]
        assert all(b_ <= a_ + 1e-9 for a_, b_ in zip(offs, offs[1:]))
