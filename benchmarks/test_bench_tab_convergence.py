"""TAB-CONV — sweeps-to-convergence, accuracy and sortedness per ordering."""

from repro.analysis import convergence_table, render_convergence_table


def test_tab_convergence_gaussian(benchmark):
    rows = benchmark(
        convergence_table, 32, runs=3, kind="gaussian",
        **{"hybrid": {"n_groups": 4}},
    )
    print("\n" + render_convergence_table(rows))
    for r in rows:
        assert r.converged_runs == r.runs
        assert r.max_sigma_err < 1e-11
    by = {r.ordering: r for r in rows}
    # equivalent orderings converge alike (Definition 1)
    assert abs(by["ring_new"].sweeps - by["round_robin"].sweeps) <= 1.5


def test_tab_convergence_graded(benchmark):
    rows = benchmark(
        convergence_table, 32, runs=2, kind="graded",
        names=["fat_tree", "ring_new", "llb"],
    )
    print("\n" + render_convergence_table(rows))
    for r in rows:
        assert r.converged_runs == r.runs


def test_off_norm_decay_quadratic(benchmark):
    from repro.svd.convergence import quadratic_rate_ok

    rows = benchmark(
        convergence_table, 16, runs=1, kind="graded", names=["fat_tree"],
    )
    decay = rows[0].off_decay
    print("\noff-norm decay per sweep:", [f"{v:.2e}" for v in decay])
    assert quadratic_rate_ok(decay)
