"""Sweep-boundary checkpoints of the distributed machine state.

Before each sweep the recovery driver snapshots everything a rollback
must restore: the column data, the accumulated right vectors, the slot
labels, the batched kernel's norm cache and (in block mode) the
block-to-column indirection.  The degradation state (``host_of_leaf``,
``dead_leaves``) is deliberately *not* part of the checkpoint — a leaf
that died stays dead across a rollback; only the numerics rewind.

In the cost model a checkpoint is a leaf-parallel memory copy
(:meth:`~repro.machine.costmodel.CostModel.checkpoint_time`); a restore
additionally pays one synchronisation startup
(:meth:`~repro.machine.costmodel.CostModel.rollback_time`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from ..machine.simulator import TreeMachine

__all__ = ["MachineCheckpoint", "restore_checkpoint", "take_checkpoint"]


@dataclass
class MachineCheckpoint:
    """Deep copy of one machine's restorable state at a sweep boundary."""

    X: np.ndarray
    V: np.ndarray | None
    labels: np.ndarray
    norms_sq: np.ndarray | None
    #: (n_slots, b) block-to-column indirection (block mode only)
    block_cols: np.ndarray | None

    @property
    def words(self) -> int:
        """Words copied (for pricing the checkpoint/rollback)."""
        return self.X.size + (self.V.size if self.V is not None else 0)


def take_checkpoint(machine: "TreeMachine") -> MachineCheckpoint:
    """Snapshot a loaded machine's numerics."""
    return MachineCheckpoint(
        X=machine.X.copy(),
        V=machine.V.copy() if machine.V is not None else None,
        labels=machine.labels.copy(),
        norms_sq=(machine._norms_sq.copy()
                  if machine._norms_sq is not None else None),
        block_cols=(machine.block_cols.copy()
                    if machine.block_cols is not None else None),
    )


def restore_checkpoint(machine: "TreeMachine", cp: MachineCheckpoint) -> None:
    """Rewind the machine's numerics to ``cp`` (degradation state kept).

    ``X``/``V`` are restored **in place**: when the machine runs under
    the processes executor they are shared-memory views the worker pool
    holds by name, so rebinding them to fresh copies would silently
    detach the rollback from the arrays the workers keep writing.
    """
    machine.X[...] = cp.X
    if cp.V is not None:
        machine.V[...] = cp.V
    else:
        machine.V = None
    machine.labels = cp.labels.copy()
    machine._norms_sq = (cp.norms_sq.copy()
                         if cp.norms_sq is not None else None)
    machine.block_cols = (cp.block_cols.copy()
                          if cp.block_cols is not None else None)
