"""Successive-halving search over the candidate space.

The tuner is a bracketed elimination race: every surviving candidate is
timed with the bench harness' median-of-k discipline
(:func:`repro.bench.timing.time_callable`), the slower half is dropped,
and the repeat count rises for the survivors — cheap one-shot timings
weed out the clearly bad configurations, the finalists get the careful
medians.  Ties and near-ties resolve by candidate order, which makes
the whole search deterministic for a deterministic timer; the unit
tests exploit that with a fake timer to pin the pruning order exactly.

The timing function is injectable (``timer(candidate, m, n, batch,
repeats) -> seconds``) so tests never pay wall-clock; the default timer
runs the real :func:`repro.svd` / :func:`repro.svd_batch` on one fixed
Gaussian matrix per shape.  The default configuration always finishes
the race with a final-round-quality timing — even when eliminated
early it is re-timed at the final repeat count — so the persisted
profile can honestly state the speedup it claims over the default.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..bench.timing import time_callable
from ..util.errors import ConvergenceWarning
from ..util.validation import require
from .space import Candidate, DEFAULT_CANDIDATE, backend_catalogue, \
    candidate_space

__all__ = ["Trial", "TuneResult", "default_timer", "tune"]

#: repeat counts per elimination round (median-of-k discipline)
REPEATS_SCHEDULE = (1, 3, 5)
REPEATS_SCHEDULE_QUICK = (1, 3)

#: deterministic data seed shared with the bench scenarios
_SEED = 2024


@dataclass(frozen=True)
class Trial:
    """One timing of one candidate in one elimination round."""

    round_index: int
    candidate: Candidate
    repeats: int
    median_s: float
    kept: bool


@dataclass(frozen=True)
class TuneResult:
    """Outcome of one :func:`tune` search.

    ``winner_median_s`` and ``default_median_s`` are measured at the
    same (final-round) repeat count, so ``speedup`` is an
    apples-to-apples claim about this host and shape.
    """

    m: int
    n: int
    batch: int | None
    winner: Candidate
    winner_median_s: float
    default_median_s: float
    repeats_final: int
    quick: bool
    trials: tuple[Trial, ...] = field(default_factory=tuple)
    candidates: tuple[Candidate, ...] = field(default_factory=tuple)

    @property
    def speedup(self) -> float:
        """Default-over-winner time ratio (> 1 means the tuned
        configuration beats the default)."""
        if self.winner_median_s <= 0:
            return float("inf")
        return self.default_median_s / self.winner_median_s


def default_timer(candidate: Candidate, m: int, n: int,
                  batch: int | None, repeats: int) -> float:
    """Median wall time of the real entry point under ``candidate``.

    One fixed Gaussian problem per shape (bench seed), full runs to
    convergence — the quantity a user of ``svd()`` actually waits for.
    Convergence warnings are suppressed: a candidate that fails to
    converge still gets an honest (large) time, not a crash.
    """
    from ..core.api import svd, svd_batch

    rng = np.random.default_rng(_SEED)
    kw = candidate.call_kwargs()
    if batch is None:
        a = rng.standard_normal((m, n))

        def work() -> None:
            svd(a, **kw)
    else:
        stack = rng.standard_normal((batch, m, n))

        def work() -> None:
            svd_batch(stack, **kw)

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", ConvergenceWarning)
        return time_callable(work, repeats=repeats, warmup=1).median_s


def tune(m: int, n: int, batch: int | None = None, *,
         quick: bool = False,
         candidates: Sequence[Candidate] | None = None,
         timer: Callable[[Candidate, int, int, int | None, int], float]
         | None = None,
         repeats_schedule: Sequence[int] | None = None,
         catalogue: dict | None = None,
         log: Callable[[str], None] | None = None) -> TuneResult:
    """Search the candidate space for the fastest configuration.

    Successive halving: round ``r`` times every survivor with
    ``repeats_schedule[r]`` repeats, sorts by median (stable — ties keep
    candidate order) and keeps the faster half, at least one.  The last
    round crowns the winner.  ``timer`` defaults to the real-run
    :func:`default_timer`; tests inject a deterministic fake.
    """
    pool = tuple(candidates) if candidates is not None else \
        candidate_space(m, n, batch, quick=quick, catalogue=catalogue)
    require(len(pool) >= 1, "tune needs at least one candidate")
    schedule = tuple(repeats_schedule) if repeats_schedule is not None else \
        (REPEATS_SCHEDULE_QUICK if quick else REPEATS_SCHEDULE)
    require(len(schedule) >= 1 and all(r >= 1 for r in schedule),
            f"repeats_schedule must be positive counts, got {schedule!r}")
    clock = default_timer if timer is None else timer
    say = (lambda _msg: None) if log is None else log

    survivors = list(pool)
    trials: list[Trial] = []
    final_medians: dict[Candidate, float] = {}
    for round_index, repeats in enumerate(schedule):
        timed = [(clock(c, m, n, batch, repeats), c) for c in survivors]
        order = sorted(range(len(timed)), key=lambda i: timed[i][0])
        last_round = round_index == len(schedule) - 1
        n_keep = 1 if last_round else max(1, (len(survivors) + 1) // 2)
        kept_idx = set(order[:n_keep])
        for i, (median_s, cand) in enumerate(timed):
            trials.append(Trial(round_index=round_index, candidate=cand,
                                repeats=repeats, median_s=median_s,
                                kept=i in kept_idx))
            say(f"round {round_index}: {cand.label()} "
                f"{median_s * 1e3:.2f} ms ({repeats}x)"
                f"{'' if i in kept_idx else '  [pruned]'}")
        if last_round:
            final_medians = {timed[i][1]: timed[i][0] for i in order}
        survivors = [timed[i][1] for i in order[:n_keep]]

    winner = survivors[0]
    winner_median_s = final_medians[winner]
    default_median_s = final_medians.get(DEFAULT_CANDIDATE)
    if default_median_s is None:
        # pruned before the final round: re-time at final quality so the
        # profile's speedup claim compares equal repeat counts
        default_median_s = clock(DEFAULT_CANDIDATE, m, n, batch, schedule[-1])
        trials.append(Trial(round_index=len(schedule) - 1,
                            candidate=DEFAULT_CANDIDATE,
                            repeats=schedule[-1],
                            median_s=default_median_s, kept=False))
        say(f"default re-timed: {DEFAULT_CANDIDATE.label()} "
            f"{default_median_s * 1e3:.2f} ms ({schedule[-1]}x)")
    say(f"winner: {winner.label()} "
        f"({default_median_s / max(winner_median_s, 1e-12):.2f}x vs default)")
    _ = backend_catalogue  # re-exported convenience; space already filtered
    return TuneResult(
        m=m, n=n, batch=batch, winner=winner,
        winner_median_s=winner_median_s,
        default_median_s=default_median_s,
        repeats_final=schedule[-1], quick=quick,
        trials=tuple(trials), candidates=pool,
    )
